"""Core datatypes shared across the FL engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.federated import ClientData
from ..device.traces import DeviceTrace
from ..nn.param_ops import ParamTree

__all__ = [
    "FLClient",
    "ClientUpdate",
    "ArrivalRecord",
    "FaultRecord",
    "SchedulerRecord",
    "RoundRecord",
    "EvalRecord",
    "TrainingLog",
    "client_update_to_state",
    "client_update_from_state",
]


@dataclass
class FLClient:
    """A registered FL client: local data plus device capabilities."""

    client_id: int
    data: ClientData
    device: DeviceTrace

    @property
    def capacity_macs(self) -> float:
        """The hardware budget T_c used for compatible-model filtering."""
        return self.device.capacity_macs


@dataclass
class ClientUpdate:
    """What one participant returns to the coordinator after local training.

    Matches Algorithm 1's ``ClientTrain`` outputs: weights ``W``, gradients
    ``G`` (the mean of per-step gradients), and loss ``L`` — plus the cost
    accounting the evaluation needs.
    """

    client_id: int
    model_id: str
    params: ParamTree
    state: ParamTree
    grad: ParamTree
    train_loss: float
    num_samples: int
    macs_spent: float
    bytes_down: int
    bytes_up: int
    round_time: float
    # Uncompressed upload size.  ``bytes_up`` is the on-wire count: equal
    # to this unless a transport codec (repro.fl.transport) re-encoded the
    # update, in which case the cost ledger reports both.
    raw_bytes_up: int = 0


def client_update_to_state(u: ClientUpdate) -> dict:
    """Stateful payload of one in-flight update (async checkpointing).

    The async engine precomputes a dispatched client's update and parks it
    on the virtual clock until its simulated finish time — a checkpoint
    taken between aggregation steps must carry those pending tensor trees
    or resumed arrivals would diverge from the uninterrupted run.
    """
    return {
        "client_id": u.client_id,
        "model_id": u.model_id,
        "params": {k: v.copy() for k, v in u.params.items()},
        "state": {k: v.copy() for k, v in u.state.items()},
        "grad": {k: v.copy() for k, v in u.grad.items()},
        "train_loss": u.train_loss,
        "num_samples": u.num_samples,
        "macs_spent": u.macs_spent,
        "bytes_down": u.bytes_down,
        "bytes_up": u.bytes_up,
        "round_time": u.round_time,
        "raw_bytes_up": u.raw_bytes_up,
    }


def client_update_from_state(payload: dict) -> ClientUpdate:
    """Rebuild the exact :class:`ClientUpdate` a checkpoint captured."""
    return ClientUpdate(
        client_id=int(payload["client_id"]),
        model_id=payload["model_id"],
        params={k: np.asarray(v) for k, v in payload["params"].items()},
        state={k: np.asarray(v) for k, v in payload["state"].items()},
        grad={k: np.asarray(v) for k, v in payload["grad"].items()},
        train_loss=float(payload["train_loss"]),
        num_samples=int(payload["num_samples"]),
        macs_spent=float(payload["macs_spent"]),
        bytes_down=int(payload["bytes_down"]),
        bytes_up=int(payload["bytes_up"]),
        round_time=float(payload["round_time"]),
        # Checkpoints from before the transport codec carry no raw count;
        # those runs never compressed, so the wire count is the raw count.
        raw_bytes_up=int(payload.get("raw_bytes_up", payload["bytes_up"])),
    )


@dataclass(frozen=True)
class ArrivalRecord:
    """One client's update reaching the server in the async engine.

    ``dispatch_seq`` is the global dispatch counter — event ties at equal
    simulated finish times break on it, which is what makes async runs
    bit-reproducible.  ``staleness`` counts server aggregation steps between
    this work's dispatch and its arrival; ``dropped`` marks an arrival the
    deadline straggler policy discarded (its compute/download cost is still
    metered, its upload never lands); ``downsized`` marks a dispatch the
    straggler policy re-assigned to a smaller compatible model before
    training (``model_ids`` already names the substitute).
    """

    dispatch_seq: int
    client_id: int
    model_ids: tuple[str, ...]
    dispatch_time: float
    finish_time: float
    staleness: int
    dropped: bool
    downsized: bool = False
    # The arrival reached the server but every one of its updates failed
    # validation (NaN/Inf or norm-outlier) and was diverted to the
    # quarantine ledger: costs are metered like a kept arrival (the
    # upload landed), but it buffers nothing toward aggregation.
    quarantined: bool = False


@dataclass(frozen=True)
class FaultRecord:
    """One recovery or quarantine action in the fault ledger.

    ``kind`` classifies the failure (``worker_crash`` / ``task_error`` /
    ``shm`` / ``shm_publish`` / ``update_rejected``); ``action`` records
    what the engine did about it (``pool_rebuild`` / ``retry`` /
    ``failed`` / ``quarantined``).  ``round_idx`` is the training round
    (sync) or aggregation-step/dispatch-wave index (async); -1 for
    actions outside any training round (evaluation waves).  Work-item
    actions carry ``client_id``/``model_id``; pool-level actions leave
    them ``None``.  The ledger exports via
    :func:`~repro.fl.export.recovery_to_dict`, deliberately *outside* the
    run export — recovery telemetry necessarily differs between a faulty
    and a fault-free run whose trajectories are bit-identical
    (CONTRACTS.md I10).
    """

    round_idx: int
    kind: str
    action: str
    client_id: int | None = None
    model_id: str | None = None
    detail: str = ""
    attempts: int = 0


@dataclass(frozen=True)
class SchedulerRecord:
    """What the scheduling subsystem decided for one round/aggregation step.

    ``requested``/``selected`` meter participation supply (``selected <
    requested`` is an under-provisioned round — the fleet or the selector's
    available pool was short).  The async-only fields record the *effective*
    pacing decisions: the ``buffer_k`` this step aggregated on, the global
    deadline (``None`` when disabled), the per-device-class deadline
    quantiles currently active (quantile pacing), and how many dispatches
    the straggler policy downsized.  ``evicted`` counts clients the sparse
    utility store let go this round.  ``offline_fallback_rounds`` counts
    how many selection calls this round found *nobody* online and fell
    back to the full pool rather than deadlock (availability selector
    only) — a nonzero value means the availability model starved the
    round and the participation mix is not what the mask prescribed.
    """

    selector: str
    pacing: str
    straggler: str
    requested: int
    selected: int
    effective_buffer_k: int | None = None
    deadline_s: float | None = None
    deadline_quantiles: tuple[float, ...] = ()
    downsized: int = 0
    dropped: int = 0
    evicted: int = 0
    offline_fallback_rounds: int = 0


@dataclass
class RoundRecord:
    """Per-round bookkeeping.

    In sync mode ``round_time`` is the barrier time — the max over
    participants of download + train + upload.  In async mode one record
    covers one buffered aggregation step and ``round_time`` is the
    simulated-clock time elapsed since the previous aggregation, so
    ``sum(round_time)`` is the run's total simulated time in both modes.
    ``arrivals`` is populated by the async engine only (including dropped
    stragglers); sync rounds leave it empty.
    """

    round_idx: int
    participants: list[int]
    assignments: dict[int, list[str]]
    mean_loss: float
    macs: float
    bytes_down: int
    bytes_up: int
    round_time: float
    num_models: int
    events: list[str] = field(default_factory=list)
    arrivals: list[ArrivalRecord] = field(default_factory=list)
    # Scheduling-subsystem metrics (selector/pacing/straggler decisions);
    # populated by both engines since PR 4.
    scheduler: SchedulerRecord | None = None
    # Transport-codec split of the cost ledger.  ``raw_bytes_up`` is the
    # uncompressed client→server total for the round (== ``bytes_up``
    # without a codec); the publish pair splits this round's server→worker
    # snapshot segment bytes into uncompressed vs. on-wire.  The publish
    # counters are infrastructure telemetry — a healed run republishes more
    # than a fault-free one — so they export via the transport ledger, not
    # the trajectory export (CONTRACTS.md I10).
    raw_bytes_up: int = 0
    publish_raw_bytes: int = 0
    publish_wire_bytes: int = 0


@dataclass
class EvalRecord:
    """One evaluation sweep over every registered client.

    ``cached_clients`` / ``evaluated_clients`` meter the incremental
    evaluation cache: clients whose deployment group's accuracies were
    served from the version-keyed cache vs. recomputed with forward passes.
    They always sum to ``len(client_accuracy)``; with the cache disabled
    (or a bespoke ``client_logits`` strategy) every client counts as
    evaluated.
    """

    round_idx: int
    cumulative_macs: float
    client_accuracy: np.ndarray  # (num_clients,)
    client_model: list[str]  # model evaluated per client
    mean_accuracy: float
    cached_clients: int = 0
    evaluated_clients: int = 0


@dataclass
class TrainingLog:
    """Everything a finished run reports; feeds every table and figure."""

    strategy: str
    mode: str = "sync"
    rounds: list[RoundRecord] = field(default_factory=list)
    evals: list[EvalRecord] = field(default_factory=list)
    total_macs: float = 0.0
    total_bytes_down: int = 0
    total_bytes_up: int = 0
    peak_storage_bytes: int = 0
    stopped_round: int = 0
    stop_reason: str = "budget"
    # Async deadline policy: work the server paid for but discarded.
    # ``dropped_macs`` is already included in ``total_macs`` (the fleet spent
    # the compute either way); these fields meter how much of it was wasted.
    dropped_updates: int = 0
    dropped_macs: float = 0.0
    # Scheduling subsystem: dispatches the straggler policy re-assigned to a
    # smaller compatible model, and clients the sparse utility store evicted.
    downsized_updates: int = 0
    evicted_clients: int = 0
    # Fault-tolerance meters (repro.fl.faults).  ``worker_restarts`` counts
    # process-pool rebuilds after a BrokenProcessPool; ``retries`` counts
    # re-dispatched work items and snapshot republishes; ``failed_updates``
    # counts work items that exhausted their retry budget (their clients
    # are excluded from the round, like drops); ``quarantined_updates``
    # counts updates the validator diverted from aggregation.  ``faults``
    # is the full ledger of FaultRecord actions, exported separately from
    # the run export (see recovery_to_dict) so a crash-recovered run's
    # trajectory export stays byte-identical to the fault-free run's.
    worker_restarts: int = 0
    retries: int = 0
    failed_updates: int = 0
    quarantined_updates: int = 0
    faults: list[FaultRecord] = field(default_factory=list)
    # Transport codec (repro.fl.transport).  ``compress`` is the canonical
    # codec spec (None = uncompressed); ``total_raw_bytes_up`` is the
    # uncompressed client→server total (``total_bytes_up`` is on-wire).
    # The publish totals split snapshot segment bytes the same way; they
    # include evaluation-wave publishes and, like the per-round publish
    # counters, export only via transport_to_dict (CONTRACTS.md I10).
    compress: str | None = None
    total_raw_bytes_up: int = 0
    publish_raw_bytes_total: int = 0
    publish_wire_bytes_total: int = 0

    # ---- headline metrics -------------------------------------------------
    def final_eval(self) -> EvalRecord:
        if not self.evals:
            raise ValueError("run produced no evaluations")
        return self.evals[-1]

    def best_eval(self) -> EvalRecord:
        """Evaluation with the best mean accuracy (paper reports converged acc)."""
        return max(self.evals, key=lambda e: e.mean_accuracy)

    def final_accuracy(self) -> float:
        return self.final_eval().mean_accuracy

    def accuracy_iqr(self) -> float:
        """Interquartile range of per-client accuracy (Table 2's IQR column)."""
        acc = self.final_eval().client_accuracy
        q75, q25 = np.percentile(acc, [75, 25])
        return float(q75 - q25)

    def network_mb(self) -> float:
        return (self.total_bytes_down + self.total_bytes_up) / 1e6

    def storage_mb(self) -> float:
        return self.peak_storage_bytes / 1e6

    def pmacs(self) -> float:
        """Total training cost in peta-MACs (Table 2's Cost column)."""
        return self.total_macs / 1e15

    def round_times(self) -> np.ndarray:
        return np.array([r.round_time for r in self.rounds])

    def simulated_time(self) -> float:
        """Total simulated seconds of the run (both modes: sum of rounds)."""
        return float(self.round_times().sum()) if self.rounds else 0.0

    def time_to_accuracy(self, target: float) -> float | None:
        """Simulated seconds until mean eval accuracy first reaches ``target``.

        ``None`` when the run never got there.  The clock for an eval at
        round ``r`` is the simulated time of rounds ``0..r`` inclusive —
        evaluation itself is free (the paper's round times exclude it).
        """
        cum = np.cumsum(self.round_times())
        for ev in self.evals:
            if ev.mean_accuracy >= target:
                idx = min(ev.round_idx, len(cum) - 1)
                return float(cum[idx]) if len(cum) else 0.0
        return None

    def cost_accuracy_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(cumulative MACs, mean accuracy) series — Fig. 7's axes."""
        xs = np.array([e.cumulative_macs for e in self.evals])
        ys = np.array([e.mean_accuracy for e in self.evals])
        return xs, ys
