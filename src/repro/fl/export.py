"""Export finished runs to JSON for downstream analysis / plotting.

``log_to_dict`` flattens a :class:`~repro.fl.types.TrainingLog` into plain
Python types (lists, floats); ``save_log``/``load_log`` round-trip it
through a JSON file.  The export carries everything the paper's figures
plot: per-round costs and events, per-eval client-accuracy vectors, and the
headline metrics.

``log_state_dict``/``log_from_state`` are the *checkpoint* serialization —
distinct from the export format on purpose: the export is a write-once
view of a **finished** run (it drops per-round byte columns and demands at
least one evaluation for its summary row), while a checkpoint must capture
a mid-run log **faithfully**, field for field, so a resumed run's final
export is bit-identical to an uninterrupted one's.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..atomicio import atomic_write
from ..stateful import check_schema, schema_tag
from .metrics import summarize
from .types import (
    ArrivalRecord,
    EvalRecord,
    FaultRecord,
    RoundRecord,
    SchedulerRecord,
    TrainingLog,
)

__all__ = [
    "log_to_dict",
    "save_log",
    "load_log",
    "recovery_to_dict",
    "save_recovery",
    "transport_to_dict",
    "save_transport",
    "log_state_dict",
    "log_from_state",
]


def log_to_dict(log: TrainingLog) -> dict:
    """JSON-serializable view of a training log."""
    return {
        "format": 1,
        "strategy": log.strategy,
        "mode": log.mode,
        "compress": log.compress,
        "summary": summarize(log).row(),
        "stop_reason": log.stop_reason,
        "stopped_round": log.stopped_round,
        # Trajectory-pure totals only: the upload-side raw/wire split is a
        # deterministic function of the config + seed, so it belongs here;
        # the *publish*-side split is executor telemetry that differs
        # between healed and clean runs (I10) and is exported exclusively
        # via transport_to_dict.
        "totals": {
            "macs": log.total_macs,
            "bytes_down": log.total_bytes_down,
            "bytes_up": log.total_bytes_up,
            "raw_bytes_up": log.total_raw_bytes_up,
            "peak_storage_bytes": log.peak_storage_bytes,
            "dropped_updates": log.dropped_updates,
            "dropped_macs": log.dropped_macs,
            "downsized_updates": log.downsized_updates,
            "evicted_clients": log.evicted_clients,
        },
        "rounds": [
            {
                "round": r.round_idx,
                "participants": list(r.participants),
                "assignments": {str(k): list(v) for k, v in r.assignments.items()},
                "mean_loss": r.mean_loss,
                "macs": r.macs,
                "round_time": r.round_time,
                "num_models": r.num_models,
                "events": list(r.events),
                # Scheduling-subsystem decisions (PR 4); None on records
                # written before the subsystem existed.
                **(
                    {
                        "scheduler": {
                            "selector": r.scheduler.selector,
                            "pacing": r.scheduler.pacing,
                            "straggler": r.scheduler.straggler,
                            "requested": r.scheduler.requested,
                            "selected": r.scheduler.selected,
                            "effective_buffer_k": r.scheduler.effective_buffer_k,
                            "deadline_s": r.scheduler.deadline_s,
                            "deadline_quantiles": list(r.scheduler.deadline_quantiles),
                            "downsized": r.scheduler.downsized,
                            "dropped": r.scheduler.dropped,
                            "evicted": r.scheduler.evicted,
                            # Only when nonzero: default-stack exports stay
                            # byte-identical to pre-columnar goldens.
                            **(
                                {
                                    "offline_fallback_rounds": (
                                        r.scheduler.offline_fallback_rounds
                                    )
                                }
                                if r.scheduler.offline_fallback_rounds
                                else {}
                            ),
                        }
                    }
                    if r.scheduler is not None
                    else {}
                ),
                # Async engine only; sync rounds have no arrival stream.
                **(
                    {
                        "arrivals": [
                            {
                                "dispatch_seq": a.dispatch_seq,
                                "client": a.client_id,
                                "models": list(a.model_ids),
                                "dispatch_time": a.dispatch_time,
                                "finish_time": a.finish_time,
                                "staleness": a.staleness,
                                "dropped": a.dropped,
                                "downsized": a.downsized,
                                "quarantined": a.quarantined,
                            }
                            for a in r.arrivals
                        ]
                    }
                    if r.arrivals
                    else {}
                ),
            }
            for r in log.rounds
        ],
        "evals": [
            {
                "round": e.round_idx,
                "cumulative_macs": e.cumulative_macs,
                "mean_accuracy": e.mean_accuracy,
                "client_accuracy": [float(a) for a in e.client_accuracy],
                "client_model": list(e.client_model),
                "cached_clients": e.cached_clients,
                "evaluated_clients": e.evaluated_clients,
            }
            for e in log.evals
        ],
    }


def save_log(log: TrainingLog, path: str | Path) -> None:
    """Write a run's JSON export to disk (crash-consistent: temp file in
    the destination directory + ``os.replace``, so a crash mid-save never
    leaves a torn JSON where a complete one used to be)."""
    with atomic_write(path, "w", encoding="utf-8") as f:
        json.dump(log_to_dict(log), f, indent=1)


def load_log(path: str | Path) -> dict:
    """Read back a saved run (as a plain dict; logs are write-once)."""
    with open(path) as f:
        data = json.load(f)
    if data.get("format") != 1:
        raise ValueError(f"unsupported log format {data.get('format')!r}")
    return data


# ----------------------------------------------------------------------
# recovery telemetry export (separate from the run export on purpose)
# ----------------------------------------------------------------------
def recovery_to_dict(log: TrainingLog) -> dict:
    """JSON-serializable view of a run's fault-recovery ledger.

    Deliberately a *separate* export from :func:`log_to_dict`: the run
    export states the trajectory, which CONTRACTS.md I10 requires to be
    byte-identical between a crash-recovered run and the fault-free run at
    the same seed — recovery telemetry necessarily differs between the
    two, so it lives here instead.
    """
    return {
        "format": 1,
        "strategy": log.strategy,
        "mode": log.mode,
        "worker_restarts": log.worker_restarts,
        "retries": log.retries,
        "failed_updates": log.failed_updates,
        "quarantined_updates": log.quarantined_updates,
        "faults": [
            {
                "round": f.round_idx,
                "kind": f.kind,
                "action": f.action,
                "client": f.client_id,
                "model": f.model_id,
                "detail": f.detail,
                "attempts": f.attempts,
            }
            for f in log.faults
        ],
    }


def save_recovery(log: TrainingLog, path: str | Path) -> None:
    """Write the recovery-ledger JSON (crash-consistent, like save_log)."""
    with atomic_write(path, "w", encoding="utf-8") as f:
        json.dump(recovery_to_dict(log), f, indent=1)


# ----------------------------------------------------------------------
# transport-cost ledger export (separate from the run export on purpose)
# ----------------------------------------------------------------------
def transport_to_dict(log: TrainingLog) -> dict:
    """JSON-serializable view of a run's transport-cost ledger.

    The upload side (``bytes_up`` wire vs ``raw_bytes_up``) is trajectory
    data, but the *publish* side is shared-memory executor telemetry: a
    healed process pool republishes a full snapshot that a clean run never
    writes, so the publish counters differ between the two and are barred
    from :func:`log_to_dict` by CONTRACTS.md I10.  This ledger is where
    both halves of the raw/on-wire split live together.
    """
    raw_up = log.total_raw_bytes_up
    wire_up = log.total_bytes_up
    return {
        "format": 1,
        "strategy": log.strategy,
        "mode": log.mode,
        "compress": log.compress,
        "totals": {
            "raw_bytes_up": raw_up,
            "wire_bytes_up": wire_up,
            "update_compression_ratio": (raw_up / wire_up) if wire_up else 1.0,
            # Publish totals include eval-wave publishes, not just the
            # per-round rows below.
            "publish_raw_bytes": log.publish_raw_bytes_total,
            "publish_wire_bytes": log.publish_wire_bytes_total,
        },
        "rounds": [
            {
                "round": r.round_idx,
                "raw_bytes_up": r.raw_bytes_up,
                "wire_bytes_up": r.bytes_up,
                "publish_raw_bytes": r.publish_raw_bytes,
                "publish_wire_bytes": r.publish_wire_bytes,
            }
            for r in log.rounds
        ],
    }


def save_transport(log: TrainingLog, path: str | Path) -> None:
    """Write the transport-ledger JSON (crash-consistent, like save_log)."""
    with atomic_write(path, "w", encoding="utf-8") as f:
        json.dump(transport_to_dict(log), f, indent=1)


# ----------------------------------------------------------------------
# checkpoint serialization (Stateful payload, not the export format)
# ----------------------------------------------------------------------
LOG_SCHEMA = schema_tag("TrainingLog")


def log_state_dict(log: TrainingLog) -> dict:
    """Lossless Stateful payload of a (possibly mid-run) training log."""
    return {
        "schema": LOG_SCHEMA,
        "strategy": log.strategy,
        "mode": log.mode,
        "compress": log.compress,
        "total_macs": log.total_macs,
        "total_bytes_down": log.total_bytes_down,
        "total_bytes_up": log.total_bytes_up,
        "total_raw_bytes_up": log.total_raw_bytes_up,
        "publish_raw_bytes_total": log.publish_raw_bytes_total,
        "publish_wire_bytes_total": log.publish_wire_bytes_total,
        "peak_storage_bytes": log.peak_storage_bytes,
        "stopped_round": log.stopped_round,
        "stop_reason": log.stop_reason,
        "dropped_updates": log.dropped_updates,
        "dropped_macs": log.dropped_macs,
        "downsized_updates": log.downsized_updates,
        "evicted_clients": log.evicted_clients,
        # Fault-tolerance meters + ledger: a checkpoint captures the log
        # faithfully, recovery telemetry included (the separation from the
        # run *export* is about I10's byte-compare, not about fidelity).
        "worker_restarts": log.worker_restarts,
        "retries": log.retries,
        "failed_updates": log.failed_updates,
        "quarantined_updates": log.quarantined_updates,
        "faults": [
            {
                "round_idx": f.round_idx,
                "kind": f.kind,
                "action": f.action,
                "client_id": f.client_id,
                "model_id": f.model_id,
                "detail": f.detail,
                "attempts": f.attempts,
            }
            for f in log.faults
        ],
        "rounds": [
            {
                "round_idx": r.round_idx,
                "participants": list(r.participants),
                "assignments": {str(k): list(v) for k, v in r.assignments.items()},
                "mean_loss": r.mean_loss,
                "macs": r.macs,
                "bytes_down": r.bytes_down,
                "bytes_up": r.bytes_up,
                "raw_bytes_up": r.raw_bytes_up,
                "publish_raw_bytes": r.publish_raw_bytes,
                "publish_wire_bytes": r.publish_wire_bytes,
                "round_time": r.round_time,
                "num_models": r.num_models,
                "events": list(r.events),
                "arrivals": [
                    {
                        "dispatch_seq": a.dispatch_seq,
                        "client_id": a.client_id,
                        "model_ids": list(a.model_ids),
                        "dispatch_time": a.dispatch_time,
                        "finish_time": a.finish_time,
                        "staleness": a.staleness,
                        "dropped": a.dropped,
                        "downsized": a.downsized,
                        "quarantined": a.quarantined,
                    }
                    for a in r.arrivals
                ],
                "scheduler": (
                    {
                        "selector": r.scheduler.selector,
                        "pacing": r.scheduler.pacing,
                        "straggler": r.scheduler.straggler,
                        "requested": r.scheduler.requested,
                        "selected": r.scheduler.selected,
                        "effective_buffer_k": r.scheduler.effective_buffer_k,
                        "deadline_s": r.scheduler.deadline_s,
                        "deadline_quantiles": list(r.scheduler.deadline_quantiles),
                        "downsized": r.scheduler.downsized,
                        "dropped": r.scheduler.dropped,
                        "evicted": r.scheduler.evicted,
                        "offline_fallback_rounds": r.scheduler.offline_fallback_rounds,
                    }
                    if r.scheduler is not None
                    else None
                ),
            }
            for r in log.rounds
        ],
        "evals": [
            {
                "round_idx": e.round_idx,
                "cumulative_macs": e.cumulative_macs,
                "client_accuracy": np.asarray(e.client_accuracy).copy(),
                "client_model": list(e.client_model),
                "mean_accuracy": e.mean_accuracy,
                "cached_clients": e.cached_clients,
                "evaluated_clients": e.evaluated_clients,
            }
            for e in log.evals
        ],
    }


def log_from_state(payload: dict) -> TrainingLog:
    """Rebuild the exact :class:`TrainingLog` a checkpoint captured."""
    check_schema(payload, LOG_SCHEMA)
    log = TrainingLog(
        strategy=payload["strategy"],
        mode=payload["mode"],
        compress=payload.get("compress"),
        total_macs=payload["total_macs"],
        total_bytes_down=payload["total_bytes_down"],
        total_bytes_up=payload["total_bytes_up"],
        # Pre-codec checkpoints carry no raw/wire split: everything they
        # shipped was raw, so the wire total doubles as the raw total.
        total_raw_bytes_up=payload.get("total_raw_bytes_up", payload["total_bytes_up"]),
        publish_raw_bytes_total=payload.get("publish_raw_bytes_total", 0),
        publish_wire_bytes_total=payload.get("publish_wire_bytes_total", 0),
        peak_storage_bytes=payload["peak_storage_bytes"],
        stopped_round=payload["stopped_round"],
        stop_reason=payload["stop_reason"],
        dropped_updates=payload["dropped_updates"],
        dropped_macs=payload["dropped_macs"],
        downsized_updates=payload["downsized_updates"],
        evicted_clients=payload["evicted_clients"],
        # .get(): checkpoints written before the fault subsystem carry none
        # of these; a zeroed ledger is exactly their state.
        worker_restarts=payload.get("worker_restarts", 0),
        retries=payload.get("retries", 0),
        failed_updates=payload.get("failed_updates", 0),
        quarantined_updates=payload.get("quarantined_updates", 0),
        faults=[
            FaultRecord(
                round_idx=f["round_idx"],
                kind=f["kind"],
                action=f["action"],
                client_id=f["client_id"],
                model_id=f["model_id"],
                detail=f["detail"],
                attempts=f["attempts"],
            )
            for f in payload.get("faults", [])
        ],
    )
    for r in payload["rounds"]:
        sched = r["scheduler"]
        log.rounds.append(
            RoundRecord(
                round_idx=r["round_idx"],
                participants=list(r["participants"]),
                assignments={int(k): list(v) for k, v in r["assignments"].items()},
                mean_loss=r["mean_loss"],
                macs=r["macs"],
                bytes_down=r["bytes_down"],
                bytes_up=r["bytes_up"],
                raw_bytes_up=r.get("raw_bytes_up", r["bytes_up"]),
                publish_raw_bytes=r.get("publish_raw_bytes", 0),
                publish_wire_bytes=r.get("publish_wire_bytes", 0),
                round_time=r["round_time"],
                num_models=r["num_models"],
                events=list(r["events"]),
                arrivals=[
                    ArrivalRecord(
                        dispatch_seq=a["dispatch_seq"],
                        client_id=a["client_id"],
                        model_ids=tuple(a["model_ids"]),
                        dispatch_time=a["dispatch_time"],
                        finish_time=a["finish_time"],
                        staleness=a["staleness"],
                        dropped=a["dropped"],
                        downsized=a["downsized"],
                        quarantined=a.get("quarantined", False),
                    )
                    for a in r["arrivals"]
                ],
                scheduler=(
                    SchedulerRecord(
                        selector=sched["selector"],
                        pacing=sched["pacing"],
                        straggler=sched["straggler"],
                        requested=sched["requested"],
                        selected=sched["selected"],
                        effective_buffer_k=sched["effective_buffer_k"],
                        deadline_s=sched["deadline_s"],
                        deadline_quantiles=tuple(sched["deadline_quantiles"]),
                        downsized=sched["downsized"],
                        dropped=sched["dropped"],
                        evicted=sched["evicted"],
                        # .get(): checkpoints written before the metering
                        # existed carry no entry; zero is their state.
                        offline_fallback_rounds=sched.get(
                            "offline_fallback_rounds", 0
                        ),
                    )
                    if sched is not None
                    else None
                ),
            )
        )
    for e in payload["evals"]:
        log.evals.append(
            EvalRecord(
                round_idx=e["round_idx"],
                cumulative_macs=e["cumulative_macs"],
                client_accuracy=np.asarray(e["client_accuracy"], dtype=float),
                client_model=list(e["client_model"]),
                mean_accuracy=e["mean_accuracy"],
                cached_clients=e["cached_clients"],
                evaluated_clients=e["evaluated_clients"],
            )
        )
    return log
