"""Columnar (structure-of-arrays) fleet store for O(active) scheduling.

The object-per-client hot path rebuilt a dense Python list of
``FLClient`` objects every dispatch wave (``[c for c in clients if
c.client_id not in in_flight]``) and looped over it per policy — O(registered)
Python work per tick, which at 1M registered / 1k active clients is ~50ms
of pure list churn before a single byte of training happens.
:class:`FleetStore` keeps the fleet as parallel numpy columns instead:

* ``ids`` (int64) — client ids in **registration order**.  Row order *is*
  the candidate order every selector sees, which is what keeps the
  vectorized selectors bit-identical to the old list path (CONTRACTS.md
  I1/I12): the same ``rng.choice`` call over the same candidate ordering
  picks the same clients.
* capacity class (int16) — equal-occupancy compute-speed classes, the
  exact ranking :class:`~repro.fl.scheduling.pacing.QuantilePacing` used
  (sort by ``(compute_speed, client_id)``, cut into contiguous groups).
* last-seen round (int64) + Oort utility EMA (float64, with a validity
  mask) — the selector state that used to live in an unbounded dict.
* device columns (compute speed, bandwidth, local train-set size) — the
  inputs of the vectorized straggler predictor
  (:meth:`FleetStore.predict_round_times`).
* per-class round-time ring buffers (:class:`RoundTimeStats`) — the
  sliding windows quantile pacing estimates deadlines from.

Selection never materializes the available pool.  The in-flight set is a
small sorted row array; :func:`positions_to_rows` maps ``rng.choice``
positions over the *compacted* candidate sequence back to physical rows
through the gaps (an order-statistics fixpoint over ``searchsorted``), so
a default-stack dispatch tick is O(active · log in_flight) instead of
O(registered) — and provably selects the exact clients the old list
comprehension would have.

Row removal (:meth:`FleetStore.remove`) compacts every column in place,
preserving the surviving row order, so selection streams are unchanged
for the survivors.  The store is :class:`~repro.stateful.Stateful`; its
payload round-trips row order exactly (CONTRACTS.md I9).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ...stateful import Stateful, check_schema, schema_tag

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ...nn.model import CellModel
    from ..client import LocalTrainerConfig
    from ..types import FLClient

__all__ = ["FleetStore", "FleetView", "RoundTimeStats", "positions_to_rows"]


def positions_to_rows(positions: np.ndarray, removed: np.ndarray) -> np.ndarray:
    """Map positions in a gap-compacted row sequence to physical rows.

    ``removed`` is a sorted array of deleted row indices; the compacted
    sequence is ``np.delete(np.arange(n), removed)``.  For each position
    ``p`` the physical row ``r`` satisfies ``r - |{s in removed : s <= r}|
    == p`` — solved by iterating ``r <- p + searchsorted(removed, r,
    'right')`` to its fixpoint.  The iterate is non-decreasing and bounded,
    so it terminates (in practice a handful of passes); cost is
    O(len(positions) · log len(removed)) per pass, never O(n).
    """
    positions = np.asarray(positions)
    if removed.size == 0:
        return positions
    rows = positions
    while True:
        shifted = positions + np.searchsorted(removed, rows, side="right")
        if np.array_equal(shifted, rows):
            return shifted
        rows = shifted


class RoundTimeStats:
    """Per-class sliding windows of completed round times, as ring buffers.

    Replaces one ``deque(maxlen=window)`` per device class with a single
    ``(num_classes, window)`` float64 array plus write cursors: an
    observation is one scatter write, and a quantile query is
    ``np.quantile`` over a contiguous slice — no per-arrival ``list()``
    materialization.  The window holds the same multiset of values the
    deque held (a full ring overwrites the oldest entry, exactly the
    deque's eviction), and quantiles are order-invariant, so estimates are
    bit-identical to the list implementation.
    """

    def __init__(self, num_classes: int, window: int):
        if num_classes < 1:
            raise ValueError("num_classes must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.num_classes = num_classes
        self.window = window
        self._buf = np.zeros((num_classes, window), dtype=np.float64)
        self._len = np.zeros(num_classes, dtype=np.int64)
        self._pos = np.zeros(num_classes, dtype=np.int64)

    def observe(self, cls: int, duration: float) -> None:
        pos = int(self._pos[cls])
        self._buf[cls, pos] = duration
        self._pos[cls] = (pos + 1) % self.window
        if self._len[cls] < self.window:
            self._len[cls] += 1

    def count(self, cls: int) -> int:
        return int(self._len[cls])

    def quantile(self, cls: int, q: float) -> float:
        k = int(self._len[cls])
        if k == 0:
            raise ValueError(f"class {cls} has no observations")
        return float(np.quantile(self._buf[cls, :k], q))

    def chronological(self) -> list[list[float]]:
        """Per-class samples oldest-first (the deque serialization order)."""
        out: list[list[float]] = []
        for cls in range(self.num_classes):
            k = int(self._len[cls])
            pos = int(self._pos[cls])
            if k < self.window:
                vals = self._buf[cls, :k]
            else:  # full ring: oldest entry sits at the write cursor
                vals = np.concatenate([self._buf[cls, pos:], self._buf[cls, :pos]])
            out.append([float(v) for v in vals])
        return out

    # RoundTimeStats instances are embedded in FleetStore / QuantilePacing
    # payloads rather than checkpointed standalone, but they follow the
    # Stateful protocol so either owner can delegate.
    schema = schema_tag("RoundTimeStats")

    def state_dict(self) -> dict:
        return {"schema": self.schema, "durations": self.chronological()}

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self.load_chronological(payload["durations"])

    def load_chronological(self, durations: Sequence[Sequence[float]]) -> None:
        if len(durations) != self.num_classes:
            raise ValueError(
                f"payload has {len(durations)} device classes; "
                f"these stats were built with {self.num_classes}"
            )
        self._buf[:] = 0.0
        self._len[:] = 0
        self._pos[:] = 0
        for cls, samples in enumerate(durations):
            vals = [float(x) for x in samples][-self.window :]
            k = len(vals)
            self._buf[cls, :k] = vals
            self._len[cls] = k
            self._pos[cls] = k % self.window


class FleetView:
    """A read-only window onto a subset of a :class:`FleetStore`'s rows.

    Three shapes, cheapest first: all rows (``rows is None, excluded is
    None``), all-but-a-few (``excluded`` is a small sorted row array — the
    in-flight exclusion; rows materialize only if a consumer needs ids),
    and an explicit row array.  ``len`` and :meth:`take` are O(taken) on
    the first two shapes, which is what makes the default-stack dispatch
    tick O(active).
    """

    __slots__ = ("store", "_rows", "_excluded")

    def __init__(
        self,
        store: "FleetStore",
        rows: np.ndarray | None = None,
        excluded: np.ndarray | None = None,
    ):
        if rows is not None and excluded is not None:
            raise ValueError("a view is either explicit rows or an exclusion, not both")
        self.store = store
        self._rows = rows
        self._excluded = excluded

    def __len__(self) -> int:
        if self._rows is not None:
            return int(self._rows.size)
        n = self.store.num_rows
        if self._excluded is not None:
            n -= int(self._excluded.size)
        return n

    def rows(self) -> np.ndarray:
        """Physical row indices, materialized (ascending for gap views)."""
        if self._rows is not None:
            return self._rows
        n = self.store.num_rows
        if self._excluded is None or self._excluded.size == 0:
            return np.arange(n, dtype=np.int64)
        return np.delete(np.arange(n, dtype=np.int64), self._excluded)

    @property
    def ids(self) -> np.ndarray:
        if self._rows is None and (self._excluded is None or self._excluded.size == 0):
            return self.store.ids
        return self.store.ids[self.rows()]

    @property
    def classes(self) -> np.ndarray:
        if self._rows is None and (self._excluded is None or self._excluded.size == 0):
            return self.store.classes
        return self.store.classes[self.rows()]

    def take_rows(self, positions: np.ndarray) -> np.ndarray:
        """Physical rows for ``positions`` into this view's ordering.

        O(len(positions)) for the all-rows and exclusion shapes — the
        exclusion shape routes through :func:`positions_to_rows` instead
        of materializing the survivor list.
        """
        positions = np.asarray(positions)
        if self._rows is not None:
            return self._rows[positions]
        if self._excluded is None or self._excluded.size == 0:
            return positions
        return positions_to_rows(positions, self._excluded)

    def take(self, positions: np.ndarray) -> "list[FLClient]":
        return self.store.clients_at(self.take_rows(positions))

    def restrict(self, mask: np.ndarray) -> "FleetView":
        """Subview of the positions where ``mask`` is True (order kept)."""
        return FleetView(self.store, rows=self.rows()[np.asarray(mask, dtype=bool)])


class FleetStore(Stateful):
    """Structure-of-arrays registry of the client fleet.

    Construct from the client list (registration order becomes row order)
    or, for object-free scale tests, :meth:`from_columns`.  ``evict_after``
    bounds the *utility* columns the same way
    :class:`~repro.fl.scheduling.store.ClientStateStore` bounds the
    strategy-side dict: a client unseen for more than ``evict_after``
    rounds has its utility EMA reset to the unseen state (it re-enters at
    the optimistic prior on next selection), so selector state stays
    proportional to the active fleet no matter how many clients ever
    participated.  Row membership is separate — :meth:`remove`
    deregisters clients outright, compacting all columns in place.
    """

    def __init__(
        self,
        clients: "Sequence[FLClient] | None" = None,
        *,
        evict_after: int | None = None,
        num_classes: int = 4,
        rt_window: int = 256,
    ):
        if evict_after is not None and evict_after < 1:
            raise ValueError("evict_after must be >= 1 (None disables eviction)")
        clients = list(clients or [])
        n = len(clients)
        self.evict_after = evict_after
        self._clients: list | None = clients
        self.ids = np.fromiter(
            (c.client_id for c in clients), dtype=np.int64, count=n
        )
        speed = np.fromiter(
            (c.device.compute_speed for c in clients), dtype=np.float64, count=n
        )
        bandwidth = np.fromiter(
            (c.device.bandwidth for c in clients), dtype=np.float64, count=n
        )
        num_train = np.fromiter(
            (c.data.num_train for c in clients), dtype=np.int64, count=n
        )
        self._init_columns(speed, bandwidth, num_train, num_classes, rt_window)

    @classmethod
    def from_columns(
        cls,
        ids: np.ndarray,
        *,
        compute_speed: np.ndarray | None = None,
        bandwidth: np.ndarray | None = None,
        num_train: np.ndarray | None = None,
        evict_after: int | None = None,
        num_classes: int = 4,
        rt_window: int = 256,
    ) -> "FleetStore":
        """Object-free construction (1M-row tests without 1M ``FLClient``s).

        Views over such a store cannot :meth:`FleetView.take` client
        objects — selection-level consumers use :meth:`FleetView.take_rows`
        and the id column instead.
        """
        store = cls.__new__(cls)
        if evict_after is not None and evict_after < 1:
            raise ValueError("evict_after must be >= 1 (None disables eviction)")
        store.evict_after = evict_after
        store._clients = None
        store.ids = np.asarray(ids, dtype=np.int64)
        n = store.ids.size
        ones = np.ones(n, dtype=np.float64)
        speed = (
            ones if compute_speed is None else np.asarray(compute_speed, dtype=np.float64)
        )
        bw = ones if bandwidth is None else np.asarray(bandwidth, dtype=np.float64)
        nt = (
            np.ones(n, dtype=np.int64)
            if num_train is None
            else np.asarray(num_train, dtype=np.int64)
        )
        store._init_columns(speed, bw, nt, num_classes, rt_window)
        return store

    def _init_columns(
        self,
        speed: np.ndarray,
        bandwidth: np.ndarray,
        num_train: np.ndarray,
        num_classes: int,
        rt_window: int,
    ) -> None:
        n = self.ids.size
        if len(set(self.ids.tolist())) != n:
            raise ValueError("client ids must be unique")
        self._speed = speed
        self._bandwidth = bandwidth
        self._num_train = num_train
        self._last_seen = np.zeros(n, dtype=np.int64)
        self._utility = np.zeros(n, dtype=np.float64)
        self._has_utility = np.zeros(n, dtype=bool)
        self._in_flight = np.zeros(n, dtype=bool)
        self._in_flight_rows: set[int] = set()
        self._in_flight_sorted: np.ndarray | None = None  # rebuilt lazily
        self._row_of: dict[int, int] = {
            int(cid): i for i, cid in enumerate(self.ids)
        }
        # Equal-occupancy compute-speed classes — the exact QuantilePacing
        # ranking: sort by (speed, client_id), cut into contiguous groups.
        self.num_classes = max(1, min(num_classes, n or 1))
        self.classes = np.zeros(n, dtype=np.int16)
        if n:
            order = np.lexsort((self.ids, speed))
            self.classes[order] = np.minimum(
                np.arange(n, dtype=np.int64) * self.num_classes // n,
                self.num_classes - 1,
            ).astype(np.int16)
        self.stats = RoundTimeStats(self.num_classes, rt_window)
        self._round = 0
        self.evicted_total = 0

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return int(self.ids.size)

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, client_id: int) -> bool:
        return int(client_id) in self._row_of

    def row_of(self, client_id: int) -> int:
        return self._row_of[int(client_id)]

    def rows_of(self, client_ids: Iterable[int]) -> np.ndarray:
        ro = self._row_of
        ids = list(client_ids)
        return np.fromiter((ro[int(c)] for c in ids), dtype=np.int64, count=len(ids))

    def class_of_id(self, client_id: int) -> int:
        row = self._row_of.get(int(client_id))
        return 0 if row is None else int(self.classes[row])

    def clients_at(self, rows: np.ndarray) -> "list[FLClient]":
        if self._clients is None:
            raise ValueError(
                "this store was built from columns (no client objects); "
                "use take_rows()/ids for selection results"
            )
        cl = self._clients
        return [cl[int(r)] for r in rows]

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def view(self) -> FleetView:
        """All registered rows, in registration order."""
        return FleetView(self)

    def available_view(self) -> FleetView:
        """Rows not currently in flight — the dispatch-wave candidate pool.

        O(in_flight · log in_flight) to produce (the exclusion array),
        never O(registered); candidate order is registration order, the
        same order the old ``[c for c in clients if ...]`` rebuild yielded.
        """
        if not self._in_flight_rows:
            return FleetView(self)
        if self._in_flight_sorted is None:
            self._in_flight_sorted = np.fromiter(
                sorted(self._in_flight_rows),
                dtype=np.int64,
                count=len(self._in_flight_rows),
            )
        return FleetView(self, excluded=self._in_flight_sorted)

    def active_view(self) -> FleetView:
        """Online ∩ non-evicted rows: today membership is row membership
        (removed rows are compacted away), so this is the available view;
        per-round availability masking happens inside the selector, which
        owns the seeded hash stream."""
        return self.available_view()

    # ------------------------------------------------------------------
    # in-flight bookkeeping (async engine)
    # ------------------------------------------------------------------
    def mark_in_flight(self, client_id: int) -> None:
        row = self._row_of[int(client_id)]
        self._in_flight[row] = True
        self._in_flight_rows.add(row)
        self._in_flight_sorted = None

    def clear_in_flight(self, client_id: int) -> None:
        row = self._row_of.get(int(client_id))
        if row is not None and self._in_flight[row]:
            self._in_flight[row] = False
            self._in_flight_rows.discard(row)
            self._in_flight_sorted = None

    def set_in_flight_ids(self, client_ids: Iterable[int]) -> None:
        """Reset the in-flight set wholesale (engine checkpoint restore)."""
        self._in_flight[:] = False
        self._in_flight_rows.clear()
        self._in_flight_sorted = None
        for cid in client_ids:
            self.mark_in_flight(cid)

    def in_flight_count(self) -> int:
        return len(self._in_flight_rows)

    # ------------------------------------------------------------------
    # Oort utility columns
    # ------------------------------------------------------------------
    def max_utility(self) -> float:
        """Running max over live utilities (optimistic init for the unseen)."""
        if not self._has_utility.any():
            return 1.0
        return float(self._utility[self._has_utility].max())

    def utilities(self, rows: np.ndarray, default: float) -> np.ndarray:
        return np.where(
            self._has_utility[rows], self._utility[rows], np.float64(default)
        )

    def observe_utility(
        self,
        round_idx: int,
        client_ids: Sequence[int],
        losses: Sequence[float],
        momentum: float,
    ) -> None:
        """Scatter an EMA update onto the utility column.

        Bit-identical to the sequential dict loop it replaces: the
        vectorized path applies ``(1 - m) * prev + m * loss`` elementwise
        (same IEEE ops), and duplicate client ids in one batch — a
        multi-model assignment delivering several updates — fall back to
        the sequential chain so later updates see earlier ones.
        """
        self._round = max(self._round, int(round_idx))
        if not client_ids:
            return
        rows = self.rows_of(client_ids)
        loss = np.asarray(losses, dtype=np.float64)
        m = momentum
        if len(set(rows.tolist())) == rows.size:
            prev_known = self._has_utility[rows]
            blended = (1.0 - m) * self._utility[rows] + m * loss
            self._utility[rows] = np.where(prev_known, blended, loss)
            self._has_utility[rows] = True
        else:
            for row, x in zip(rows, loss):
                if self._has_utility[row]:
                    self._utility[row] = (1.0 - m) * self._utility[row] + m * float(x)
                else:
                    self._utility[row] = float(x)
                    self._has_utility[row] = True
        self._last_seen[rows] = self._round

    def export_utilities(self) -> dict[int, float]:
        rows = np.flatnonzero(self._has_utility)
        return {int(self.ids[r]): float(self._utility[r]) for r in rows}

    def set_utilities(self, utilities: dict[int, float]) -> None:
        """Replace the utility columns wholesale (checkpoint restore)."""
        self._utility[:] = 0.0
        self._has_utility[:] = False
        for cid, u in utilities.items():
            row = self._row_of.get(int(cid))
            if row is None:
                raise ValueError(
                    f"utility payload names client {cid} which is not in the fleet"
                )
            self._utility[row] = float(u)
            self._has_utility[row] = True

    def resident_utilities(self) -> int:
        return int(self._has_utility.sum())

    def advance(self, round_idx: int) -> int:
        """Move the activity clock; evict long-inactive utility state.

        Returns the number of clients whose utility was reset.  Mirrors
        ``ClientStateStore.advance`` (strictly-greater-than comparison,
        ``evict_after=None`` disables), but is one vectorized mask over
        the columns instead of a dict scan — and "eviction" is a column
        reset, so resident memory is already bounded by the fleet columns
        and the evicted client simply rehydrates at the optimistic prior.
        """
        self._round = max(self._round, int(round_idx))
        if self.evict_after is None:
            return 0
        stale = self._has_utility & (
            self._round - self._last_seen > self.evict_after
        )
        count = int(stale.sum())
        if count:
            self._utility[stale] = 0.0
            self._has_utility[stale] = False
        self.evicted_total += count
        return count

    # ------------------------------------------------------------------
    # row removal (deregistration) with in-place compaction
    # ------------------------------------------------------------------
    def remove(self, client_ids: Iterable[int]) -> int:
        """Deregister clients; compact all columns in place, order kept.

        Surviving rows keep their relative (registration) order, so the
        candidate ordering every selector sees — and therefore the
        selection stream at a given RNG state — is exactly the ordering a
        store constructed from the surviving fleet would produce.
        Removing an in-flight client is a bug in the caller (its
        completion event would dangle) and raises.
        """
        rows = [self._row_of[int(c)] for c in set(int(c) for c in client_ids)]
        if not rows:
            return 0
        for r in rows:
            if self._in_flight[r]:
                raise ValueError(
                    f"cannot remove in-flight client {int(self.ids[r])}"
                )
        n = self.num_rows
        keep = np.ones(n, dtype=bool)
        keep[rows] = False
        m = int(keep.sum())
        for name in (
            "ids",
            "classes",
            "_speed",
            "_bandwidth",
            "_num_train",
            "_last_seen",
            "_utility",
            "_has_utility",
            "_in_flight",
        ):
            col = getattr(self, name)
            col[:m] = col[keep]
            setattr(self, name, col[:m])
        if self._clients is not None:
            self._clients = [c for c, k in zip(self._clients, keep) if k]
        self._row_of = {int(cid): i for i, cid in enumerate(self.ids)}
        self._in_flight_rows = set(np.flatnonzero(self._in_flight).tolist())
        self._in_flight_sorted = None
        return n - m

    # ------------------------------------------------------------------
    # vectorized straggler predictor
    # ------------------------------------------------------------------
    def predict_round_times(
        self, rows: np.ndarray, model: "CellModel", trainer: "LocalTrainerConfig"
    ) -> np.ndarray:
        """Vectorized ``estimate_round_time`` over the device columns.

        Same memoized ``macs()``/``nbytes()`` inputs and the same
        elementwise IEEE operation order as the scalar
        ``client_round_time`` arithmetic, so per-row results are
        bit-identical to calling the scalar estimator per client.
        """
        samples = (
            np.minimum(np.int64(trainer.batch_size), self._num_train[rows])
            * np.int64(trainer.local_steps)
        )
        transfer = model.nbytes() / self._bandwidth[rows]
        training = (3 * model.macs()) * samples / self._speed[rows]
        return transfer + training + transfer

    # ------------------------------------------------------------------
    # footprint
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Resident bytes of the columnar state (excludes client objects)."""
        total = 0
        for col in (
            self.ids,
            self.classes,
            self._speed,
            self._bandwidth,
            self._num_train,
            self._last_seen,
            self._utility,
            self._has_utility,
            self._in_flight,
        ):
            total += col.nbytes
        total += self.stats._buf.nbytes
        return total

    # ------------------------------------------------------------------
    # durability (Stateful)
    # ------------------------------------------------------------------
    schema = schema_tag("FleetStore")

    def state_dict(self) -> dict:
        """Trajectory state: row order, activity stamps, utility columns,
        round-time windows.  Device columns and classes are configuration
        (a pure function of the fleet) and are rebuilt at construction."""
        return {
            "schema": self.schema,
            "ids": self.ids.copy(),
            "last_seen": self._last_seen.copy(),
            "utility": self._utility.copy(),
            "has_utility": self._has_utility.copy(),
            "round": self._round,
            "evicted_total": self.evicted_total,
            "stats": self.stats.state_dict(),
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        ids = np.asarray(payload["ids"], dtype=np.int64)
        if ids.size != self.num_rows or not np.array_equal(ids, self.ids):
            # A checkpointed store may have removed rows the freshly
            # constructed one still carries: replay the membership by
            # compacting to the payload's ids (order must match — row
            # order is part of the contract).
            payload_set = set(ids.tolist())
            extra = [int(c) for c in self.ids if int(c) not in payload_set]
            if len(ids) + len(extra) != self.num_rows:
                raise ValueError(
                    "fleet checkpoint names clients outside the constructed fleet"
                )
            self.remove(extra)
            if not np.array_equal(ids, self.ids):
                raise ValueError(
                    "fleet checkpoint row order does not match registration order"
                )
        self._last_seen = np.asarray(payload["last_seen"], dtype=np.int64).copy()
        self._utility = np.asarray(payload["utility"], dtype=np.float64).copy()
        self._has_utility = np.asarray(payload["has_utility"], dtype=bool).copy()
        self._round = int(payload["round"])
        self.evicted_total = int(payload["evicted_total"])
        self.stats.load_state_dict(payload["stats"])
