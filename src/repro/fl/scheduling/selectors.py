"""Client selection policies: uniform, availability-aware, utility-skewed.

``uniform`` reproduces the pre-subsystem ``select_uniform`` bit-for-bit
(same ``rng.choice`` call on the coordinator RNG).  ``availability``
models intermittent edge clients — each ``(round, client)`` pair flips a
deterministic seeded coin, and selection draws uniformly from the clients
that are online.  ``oort`` skews selection toward high-recent-loss clients
(the statistical-utility half of Oort, Lai et al. OSDI'21): clients whose
data the current models fit worst are the most informative to train next,
and never-tried clients enter at the current maximum utility so
exploration never starves.

Selectors accept either the legacy ``list[FLClient]`` pool or a
:class:`~repro.fl.scheduling.fleet.FleetView` over the columnar
:class:`~repro.fl.scheduling.fleet.FleetStore`.  Both paths make the same
``rng.choice`` call over the same candidate ordering (registration order),
so selection streams are bit-identical between them — the view path just
does it without materializing an O(registered) Python list (CONTRACTS.md
I12).  When a selector is *bound* to a fleet store
(:meth:`ClientSelector.bind_fleet`), its per-client state lives in the
store's columns: Oort's utility EMA becomes a masked gather + scatter, and
``evict_after`` inactivity eviction bounds it for free.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ...stateful import check_schema, schema_tag
from ..types import ClientUpdate, FLClient
from .availability import AvailabilityModel
from .base import ClientSelector
from .fleet import FleetStore, FleetView

__all__ = [
    "UniformSelector",
    "AvailabilityAwareSelector",
    "OortSelector",
    "uniform_choice",
]

# Salt separating availability draws from every other seeded stream in
# the run (executors derive theirs from SeedSequence spawn keys).
_AVAIL_SALT = np.uint64(0xA11A_5EED_0B5E_11AB)
_U64 = np.uint64


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (wrapping arithmetic)."""
    x = x + _U64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    return x ^ (x >> _U64(31))


def _pool_ids(pool) -> np.ndarray:
    if isinstance(pool, FleetView):
        return pool.ids
    return np.asarray([c.client_id for c in pool])


def uniform_choice(pool, num: int, rng: np.random.Generator) -> list[FLClient]:
    """Uniform selection without replacement (Algorithm 1's Select).

    Clamps ``num`` to the pool size (the caller records under-provisioning)
    but rejects ``num < 1`` — a silently empty round is a configuration
    error, not a schedule.  ``pool`` is a ``list[FLClient]`` or a
    ``FleetView``; both make the identical ``rng.choice(len(pool), ...)``
    call, and the view maps the chosen positions straight to rows instead
    of indexing a materialized list.
    """
    size = len(pool)
    if size == 0:
        raise ValueError("no registered clients")
    if num < 1:
        raise ValueError(f"cannot select {num} clients; num must be >= 1")
    num = min(num, size)
    idx = rng.choice(size, size=num, replace=False)
    if isinstance(pool, FleetView):
        return pool.take(idx)
    return [pool[i] for i in idx]


class UniformSelector(ClientSelector):
    """The default: uniform without replacement, on the coordinator RNG."""

    name = "uniform"

    def __init__(self, seed: int = 0):
        del seed  # uniform consumes the coordinator RNG; no private stream

    def select(self, round_idx, clients, num, rng):
        return uniform_choice(clients, num, rng)


class AvailabilityAwareSelector(ClientSelector):
    """Uniform selection restricted to the clients online this round.

    Availability is a per-``(round, client)`` Bernoulli draw from a
    counter-based SplitMix64 hash of ``(seed, round, client_id)`` — a
    deterministic function of the run seed that is independent of pool
    order or in-flight composition, so the same client is online in the
    same rounds across backends and repeat runs.  Counter-based (rather
    than one ``SeedSequence``-derived generator per client per wave)
    because a dispatch wave asks about every client in the pool: the whole
    mask is one vectorized hash over the ids, not ``O(pool)`` generator
    constructions.  When fewer than ``num`` clients are online the whole
    online pool is taken, and the engine's round record surfaces the
    shortfall.

    An optional :class:`~repro.fl.scheduling.availability.AvailabilityModel`
    reshapes the *rate* per round and device class (diurnal cycles, trace
    tables); the coin stays the same hash stream, so masks remain pool-order
    and backend invariant.  A fully offline round falls back to the whole
    pool rather than deadlocking — metered in ``offline_fallback_rounds``
    and surfaced on the round's ``SchedulerRecord``.
    """

    name = "availability"

    def __init__(
        self,
        seed: int = 0,
        availability: float = 0.8,
        model: AvailabilityModel | None = None,
    ):
        if not 0.0 < availability <= 1.0:
            raise ValueError("availability must lie in (0, 1]")
        self.seed = seed
        self.availability = availability
        self.model = model
        self._fleet: FleetStore | None = None
        self.offline_fallback_rounds = 0

    def bind_fleet(self, fleet: FleetStore) -> None:
        self._fleet = fleet

    def _rates(self, round_idx: int, classes: np.ndarray | None):
        if self.model is None:
            return self.availability
        return self.model.rates(round_idx, classes)

    def _online_mask(
        self,
        round_idx: int,
        client_ids: np.ndarray,
        classes: np.ndarray | None = None,
    ) -> np.ndarray:
        with np.errstate(over="ignore"):  # wrapping uint64 arithmetic is the point
            base = _splitmix64(
                np.asarray([self.seed], dtype=np.uint64) ^ _AVAIL_SALT
            ) ^ _splitmix64(np.asarray([round_idx], dtype=np.uint64))
            draws = _splitmix64(client_ids.astype(np.uint64) ^ base)
        # Top 53 bits -> uniform double in [0, 1).
        return (draws >> _U64(11)) / float(1 << 53) < self._rates(round_idx, classes)

    def _classes_for(self, round_idx: int, client_ids: np.ndarray) -> np.ndarray | None:
        if self.model is None or not self.model.uses_classes:
            return None
        if self._fleet is None:
            # A bare list pool has no class column; treat it as class 0.
            return np.zeros(client_ids.size, dtype=np.int16)
        ro = self._fleet._row_of
        rows = np.fromiter(
            (ro.get(int(c), -1) for c in client_ids),
            dtype=np.int64,
            count=client_ids.size,
        )
        classes = np.zeros(client_ids.size, dtype=np.int16)
        known = rows >= 0
        classes[known] = self._fleet.classes[rows[known]]
        return classes

    def is_online(self, round_idx: int, client_id: int) -> bool:
        ids = np.asarray([client_id])
        return bool(self._online_mask(round_idx, ids, self._classes_for(round_idx, ids))[0])

    def select(self, round_idx, clients, num, rng):
        if num < 1:
            raise ValueError(f"cannot select {num} clients; num must be >= 1")
        if isinstance(clients, FleetView):
            view = clients
            classes = None
            if self.model is not None and self.model.uses_classes:
                classes = view.classes
            mask = self._online_mask(round_idx, view.ids, classes)
            if mask.any():
                online = view.restrict(mask)
            else:
                # A fully offline round would stall the engine; fall back
                # to the offline pool rather than deadlock (surfaced as
                # offline_fallback_rounds on the SchedulerRecord).
                self.offline_fallback_rounds += 1
                online = view
            return uniform_choice(online, min(num, len(online)), rng)
        ids = _pool_ids(clients)
        mask = self._online_mask(round_idx, ids, self._classes_for(round_idx, ids))
        online = [c for c, m in zip(clients, mask) if m]
        if not online:
            self.offline_fallback_rounds += 1
            online = clients
        return uniform_choice(online, min(num, len(online)), rng)

    schema = schema_tag("AvailabilityAwareSelector")

    def state_dict(self) -> dict:
        return {
            "schema": self.schema,
            "offline_fallback_rounds": self.offline_fallback_rounds,
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self.offline_fallback_rounds = int(payload.get("offline_fallback_rounds", 0))


class OortSelector(ClientSelector):
    """Utility-skewed selection (Oort's statistical utility, simplified).

    Keeps an exponential moving average of each client's training loss;
    selection samples without replacement with probability proportional to
    ``(floor + utility) ** alpha``.  Unseen clients enter at the running
    maximum utility (optimistic initialization), which is what keeps the
    policy exploring the long tail instead of re-picking early winners.
    The full Oort also divides by observed system speed; our simulated
    fleets express slowness through the pacing/straggler policies instead,
    so this selector stays purely statistical.

    Unbound, utilities live in a dict (the legacy shape — unbounded in the
    number of clients ever seen).  Bound to a
    :class:`~repro.fl.scheduling.fleet.FleetStore`, they live in the
    store's utility column: ``_weights`` is a masked gather, ``observe_round``
    a scatter, and the store's ``evict_after`` inactivity eviction bounds
    the resident state at O(fleet columns) with churned clients rehydrating
    at the optimistic prior.  Both representations produce bit-identical
    weights (same float64 values through the same IEEE expression).
    """

    name = "oort"

    def __init__(self, seed: int = 0, alpha: float = 2.0, momentum: float = 0.5):
        del seed  # samples on the coordinator RNG, like uniform
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must lie in (0, 1]")
        self.alpha = alpha
        self.momentum = momentum
        self._utility: dict[int, float] = {}
        self._fleet: FleetStore | None = None

    def bind_fleet(self, fleet: FleetStore) -> None:
        self._fleet = fleet
        if self._utility:
            # Observations made before binding migrate into the columns.
            fleet.set_utilities(self._utility)
            self._utility = {}

    def _weights(self, pool) -> np.ndarray:
        if self._fleet is not None:
            if isinstance(pool, FleetView):
                rows = pool.rows()
            else:
                rows = self._fleet.rows_of([c.client_id for c in pool])
            u = self._fleet.utilities(rows, self._fleet.max_utility())
        else:
            default = max(self._utility.values()) if self._utility else 1.0
            u = np.array(
                [self._utility.get(int(cid), default) for cid in _pool_ids(pool)]
            )
        # Floor keeps every probability positive (sampling without
        # replacement needs full support even for converged clients).
        w = (1e-6 + np.maximum(u, 0.0)) ** self.alpha
        return w / w.sum()

    def select(self, round_idx, clients, num, rng):
        size = len(clients)
        if size == 0:
            raise ValueError("no registered clients")
        if num < 1:
            raise ValueError(f"cannot select {num} clients; num must be >= 1")
        num = min(num, size)
        idx = rng.choice(size, size=num, replace=False, p=self._weights(clients))
        if isinstance(clients, FleetView):
            return clients.take(idx)
        return [clients[i] for i in idx]

    def observe_round(self, round_idx: int, updates: Iterable[ClientUpdate]) -> None:
        m = self.momentum
        if self._fleet is not None:
            ups = list(updates)
            self._fleet.observe_utility(
                round_idx,
                [u.client_id for u in ups],
                [float(u.train_loss) for u in ups],
                m,
            )
            return
        for u in updates:
            prev = self._utility.get(u.client_id)
            loss = float(u.train_loss)
            self._utility[u.client_id] = (
                loss if prev is None else (1.0 - m) * prev + m * loss
            )

    schema = schema_tag("OortSelector")

    def state_dict(self) -> dict:
        utilities = (
            self._fleet.export_utilities() if self._fleet is not None else self._utility
        )
        return {
            "schema": self.schema,
            "utility": {str(cid): float(u) for cid, u in utilities.items()},
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        utilities = {int(cid): float(u) for cid, u in payload["utility"].items()}
        if self._fleet is not None:
            self._fleet.set_utilities(utilities)
            self._utility = {}
        else:
            self._utility = utilities
