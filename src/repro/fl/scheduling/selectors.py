"""Client selection policies: uniform, availability-aware, utility-skewed.

``uniform`` reproduces the pre-subsystem ``select_uniform`` bit-for-bit
(same ``rng.choice`` call on the coordinator RNG).  ``availability``
models intermittent edge clients — each ``(round, client)`` pair flips a
deterministic seeded coin, and selection draws uniformly from the clients
that are online.  ``oort`` skews selection toward high-recent-loss clients
(the statistical-utility half of Oort, Lai et al. OSDI'21): clients whose
data the current models fit worst are the most informative to train next,
and never-tried clients enter at the current maximum utility so
exploration never starves.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ...stateful import check_schema, schema_tag
from ..types import ClientUpdate, FLClient
from .base import ClientSelector

__all__ = [
    "UniformSelector",
    "AvailabilityAwareSelector",
    "OortSelector",
    "uniform_choice",
]

# Salt separating availability draws from every other seeded stream in
# the run (executors derive theirs from SeedSequence spawn keys).
_AVAIL_SALT = np.uint64(0xA11A_5EED_0B5E_11AB)
_U64 = np.uint64


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (wrapping arithmetic)."""
    x = x + _U64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    return x ^ (x >> _U64(31))


def uniform_choice(
    clients: list[FLClient], num: int, rng: np.random.Generator
) -> list[FLClient]:
    """Uniform selection without replacement (Algorithm 1's Select).

    Clamps ``num`` to the pool size (the caller records under-provisioning)
    but rejects ``num < 1`` — a silently empty round is a configuration
    error, not a schedule.
    """
    if not clients:
        raise ValueError("no registered clients")
    if num < 1:
        raise ValueError(f"cannot select {num} clients; num must be >= 1")
    num = min(num, len(clients))
    idx = rng.choice(len(clients), size=num, replace=False)
    return [clients[i] for i in idx]


class UniformSelector(ClientSelector):
    """The default: uniform without replacement, on the coordinator RNG."""

    name = "uniform"

    def __init__(self, seed: int = 0):
        del seed  # uniform consumes the coordinator RNG; no private stream

    def select(self, round_idx, clients, num, rng):
        return uniform_choice(clients, num, rng)


class AvailabilityAwareSelector(ClientSelector):
    """Uniform selection restricted to the clients online this round.

    Availability is a per-``(round, client)`` Bernoulli draw from a
    counter-based SplitMix64 hash of ``(seed, round, client_id)`` — a
    deterministic function of the run seed that is independent of pool
    order or in-flight composition, so the same client is online in the
    same rounds across backends and repeat runs.  Counter-based (rather
    than one ``SeedSequence``-derived generator per client per wave)
    because a dispatch wave asks about every client in the pool: the whole
    mask is one vectorized hash over the ids, not ``O(pool)`` generator
    constructions.  When fewer than ``num`` clients are online the whole
    online pool is taken, and the engine's round record surfaces the
    shortfall.
    """

    name = "availability"

    def __init__(self, seed: int = 0, availability: float = 0.8):
        if not 0.0 < availability <= 1.0:
            raise ValueError("availability must lie in (0, 1]")
        self.seed = seed
        self.availability = availability

    def _online_mask(self, round_idx: int, client_ids: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):  # wrapping uint64 arithmetic is the point
            base = _splitmix64(
                np.asarray([self.seed], dtype=np.uint64) ^ _AVAIL_SALT
            ) ^ _splitmix64(np.asarray([round_idx], dtype=np.uint64))
            draws = _splitmix64(client_ids.astype(np.uint64) ^ base)
        # Top 53 bits -> uniform double in [0, 1).
        return (draws >> _U64(11)) / float(1 << 53) < self.availability

    def is_online(self, round_idx: int, client_id: int) -> bool:
        return bool(self._online_mask(round_idx, np.asarray([client_id]))[0])

    def select(self, round_idx, clients, num, rng):
        if num < 1:
            raise ValueError(f"cannot select {num} clients; num must be >= 1")
        ids = np.asarray([c.client_id for c in clients])
        mask = self._online_mask(round_idx, ids)
        online = [c for c, m in zip(clients, mask) if m]
        if not online:
            # A fully offline round would stall the engine; fall back to
            # the offline pool rather than deadlock (surfaced as an
            # under-provisioned round when even that pool is short).
            online = clients
        return uniform_choice(online, min(num, len(online)), rng)


class OortSelector(ClientSelector):
    """Utility-skewed selection (Oort's statistical utility, simplified).

    Keeps an exponential moving average of each client's training loss;
    selection samples without replacement with probability proportional to
    ``(floor + utility) ** alpha``.  Unseen clients enter at the running
    maximum utility (optimistic initialization), which is what keeps the
    policy exploring the long tail instead of re-picking early winners.
    The full Oort also divides by observed system speed; our simulated
    fleets express slowness through the pacing/straggler policies instead,
    so this selector stays purely statistical.
    """

    name = "oort"

    def __init__(self, seed: int = 0, alpha: float = 2.0, momentum: float = 0.5):
        del seed  # samples on the coordinator RNG, like uniform
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must lie in (0, 1]")
        self.alpha = alpha
        self.momentum = momentum
        self._utility: dict[int, float] = {}

    def _weights(self, clients: list[FLClient]) -> np.ndarray:
        default = max(self._utility.values()) if self._utility else 1.0
        u = np.array([self._utility.get(c.client_id, default) for c in clients])
        # Floor keeps every probability positive (sampling without
        # replacement needs full support even for converged clients).
        w = (1e-6 + np.maximum(u, 0.0)) ** self.alpha
        return w / w.sum()

    def select(self, round_idx, clients, num, rng):
        if not clients:
            raise ValueError("no registered clients")
        if num < 1:
            raise ValueError(f"cannot select {num} clients; num must be >= 1")
        num = min(num, len(clients))
        idx = rng.choice(len(clients), size=num, replace=False, p=self._weights(clients))
        return [clients[i] for i in idx]

    def observe_round(self, round_idx: int, updates: Iterable[ClientUpdate]) -> None:
        m = self.momentum
        for u in updates:
            prev = self._utility.get(u.client_id)
            loss = float(u.train_loss)
            self._utility[u.client_id] = (
                loss if prev is None else (1.0 - m) * prev + m * loss
            )

    schema = schema_tag("OortSelector")

    def state_dict(self) -> dict:
        return {
            "schema": self.schema,
            "utility": {str(cid): u for cid, u in self._utility.items()},
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self._utility = {int(cid): float(u) for cid, u in payload["utility"].items()}
