"""Trace/distribution-driven client availability (FLGo-style churn).

The availability selector's default is a flat Bernoulli coin per
``(round, client)``.  Real fleets are not flat: phone-usage traces show
diurnal login waves, and device classes churn differently (cheap devices
disappear overnight; plugged-in desktops do not).  This module supplies
pluggable *availability models* that turn ``(round, device class)`` into
an online **rate**; the selector keeps drawing the actual coin from its
counter-based SplitMix64 stream, so whichever model shapes the rates, the
mask stays a deterministic function of ``(seed, round, client_id)`` —
independent of pool order and executor backend (CONTRACTS.md I1).

Models are immutable (pure rate functions): they carry no trajectory
state and need no checkpoint payload.

Spec grammar (``--availability-trace`` / ``CoordinatorConfig.availability_trace``)::

    bernoulli:<rate>
    diurnal:base=0.8,amplitude=0.5,period=24,class_phase=0.25,floor=0.05,ceil=1.0
    trace:<path.json>

``diurnal`` is a sinusoidal day cycle: class ``c``'s online rate is
``clip(base * (1 + amplitude * sin(2π * (round/period + class_phase*c))),
floor, ceil)`` — ``class_phase`` staggers the classes so slow-device
classes dip at different simulated hours (the per-class churn knob).
``trace`` reads a JSON table ``{"period": P, "rates": [[...P floats per
class...], ...]}`` (or a single flat list applied to every class), the
shape FLGo extracts from real usage pings.
"""

from __future__ import annotations

import json
import math

import numpy as np

__all__ = [
    "AvailabilityModel",
    "BernoulliAvailability",
    "DiurnalAvailability",
    "TraceAvailability",
    "parse_availability",
]


def _check_rate(rate: float, what: str) -> float:
    rate = float(rate)
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"{what} must lie in (0, 1], got {rate}")
    return rate


class AvailabilityModel:
    """Base: maps ``(round, device class)`` to an online rate in (0, 1].

    ``uses_classes`` tells the selector whether the model differentiates
    device classes (a list-of-clients pool has no class column; such pools
    are treated as class 0).
    """

    uses_classes = False

    def rates(self, round_idx: int, classes: np.ndarray | None):
        """Online rate(s) for this round: a scalar, or per-row array when
        ``classes`` (an int array of device classes) is given."""
        raise NotImplementedError

    def spec(self) -> str:
        """The spec string that reconstructs this model."""
        raise NotImplementedError


class BernoulliAvailability(AvailabilityModel):
    """Flat rate — exactly the selector's classic behavior."""

    def __init__(self, rate: float = 0.8):
        self.rate = _check_rate(rate, "availability rate")

    def rates(self, round_idx: int, classes: np.ndarray | None):
        return self.rate

    def spec(self) -> str:
        return f"bernoulli:{self.rate:g}"


class DiurnalAvailability(AvailabilityModel):
    """Sinusoidal day cycle with per-class phase stagger."""

    uses_classes = True

    def __init__(
        self,
        base: float = 0.8,
        amplitude: float = 0.5,
        period: float = 24.0,
        class_phase: float = 0.25,
        floor: float = 0.05,
        ceil: float = 1.0,
    ):
        self.base = _check_rate(base, "base")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(f"amplitude must lie in [0, 1], got {amplitude}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.class_phase = float(class_phase)
        self.floor = float(floor)
        self.ceil = _check_rate(ceil, "ceil")
        if not 0.0 < self.floor <= self.ceil:
            raise ValueError(
                f"floor must lie in (0, ceil], got floor={floor} ceil={ceil}"
            )

    def rates(self, round_idx: int, classes: np.ndarray | None):
        phase = round_idx / self.period
        if classes is None:
            wave = math.sin(2.0 * math.pi * phase)
            return float(
                min(max(self.base * (1.0 + self.amplitude * wave), self.floor), self.ceil)
            )
        wave = np.sin(
            2.0 * np.pi * (phase + self.class_phase * classes.astype(np.float64))
        )
        return np.clip(self.base * (1.0 + self.amplitude * wave), self.floor, self.ceil)

    def spec(self) -> str:
        return (
            f"diurnal:base={self.base:g},amplitude={self.amplitude:g},"
            f"period={self.period:g},class_phase={self.class_phase:g},"
            f"floor={self.floor:g},ceil={self.ceil:g}"
        )


class TraceAvailability(AvailabilityModel):
    """Periodic per-class rate table, typically loaded from a JSON trace."""

    uses_classes = True

    def __init__(self, rates, path: str | None = None):
        table = np.asarray(rates, dtype=np.float64)
        if table.ndim == 1:
            table = table[None, :]
        if table.ndim != 2 or table.shape[1] < 1:
            raise ValueError(
                "trace rates must be a [classes x period] table or a flat list"
            )
        if not ((table > 0.0) & (table <= 1.0)).all():
            raise ValueError("every trace rate must lie in (0, 1]")
        self.table = table
        self.path = path

    @classmethod
    def from_file(cls, path: str) -> "TraceAvailability":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except OSError as exc:
            raise ValueError(f"cannot read availability trace {path!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ValueError(f"availability trace {path!r} is not JSON: {exc}") from exc
        if isinstance(payload, dict):
            rates = payload.get("rates")
            if rates is None:
                raise ValueError(
                    f"availability trace {path!r} has no 'rates' key"
                )
            period = payload.get("period")
            model = cls(rates, path=path)
            if period is not None and int(period) != model.table.shape[1]:
                raise ValueError(
                    f"availability trace {path!r}: period={period} does not "
                    f"match rate row length {model.table.shape[1]}"
                )
            return model
        return cls(payload, path=path)

    def rates(self, round_idx: int, classes: np.ndarray | None):
        period = self.table.shape[1]
        slot = int(round_idx) % period
        if classes is None:
            return float(self.table[0, slot])
        cls_idx = np.minimum(
            classes.astype(np.int64), self.table.shape[0] - 1
        )
        return self.table[cls_idx, slot]

    def spec(self) -> str:
        if self.path is None:
            raise ValueError("an inline trace table has no reconstructing spec")
        return f"trace:{self.path}"


def parse_availability(spec: str) -> AvailabilityModel:
    """Parse an availability spec string into a model (see module docstring)."""
    if not isinstance(spec, str) or ":" not in spec:
        raise ValueError(
            f"availability spec must look like 'kind:args', got {spec!r}"
        )
    kind, _, args = spec.partition(":")
    kind = kind.strip().lower()
    if kind == "bernoulli":
        try:
            rate = float(args)
        except ValueError:
            raise ValueError(
                f"bernoulli spec takes one rate, got {args!r}"
            ) from None
        return BernoulliAvailability(rate)
    if kind == "diurnal":
        kwargs: dict[str, float] = {}
        allowed = ("base", "amplitude", "period", "class_phase", "floor", "ceil")
        if args.strip():
            for part in args.split(","):
                key, sep, value = part.partition("=")
                key = key.strip()
                if not sep or key not in allowed:
                    raise ValueError(
                        f"diurnal spec part {part!r} is not one of "
                        f"{', '.join(k + '=<float>' for k in allowed)}"
                    )
                try:
                    kwargs[key] = float(value)
                except ValueError:
                    raise ValueError(
                        f"diurnal spec {key}={value!r} is not a number"
                    ) from None
        return DiurnalAvailability(**kwargs)
    if kind == "trace":
        if not args.strip():
            raise ValueError("trace spec needs a file path: trace:<path.json>")
        return TraceAvailability.from_file(args.strip())
    raise ValueError(
        f"unknown availability model {kind!r}; choose bernoulli, diurnal, or trace"
    )
