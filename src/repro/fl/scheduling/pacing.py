"""Pacing policies: aggregation buffer size and per-client deadlines.

``static`` reproduces the pre-subsystem behavior exactly (constant
``buffer_k``, one global ``deadline_s``).  ``adaptive`` rescales the
buffer with the observed arrival rate, so the simulated time *per
aggregation step* stays near what the configured ``buffer_k`` cost when
the run began — a fleet that speeds up (stragglers dropped or downsized,
faster devices joining) buffers more per step instead of aggregating in a
frenzy, and a slowing fleet aggregates smaller batches instead of
stalling.  ``quantile`` replaces the single global deadline with
per-device-class deadlines estimated from each class's *own* completed
round times: slow devices get deadlines calibrated to slow-device
durations, so a class is trimmed of its outliers rather than condemned
wholesale by a deadline sized for fast hardware.
"""

from __future__ import annotations

from ...stateful import check_schema, schema_tag
from ..types import FLClient
from .base import PacingPolicy
from .fleet import FleetStore, RoundTimeStats

__all__ = ["StaticPacing", "AdaptivePacing", "QuantilePacing"]


class StaticPacing(PacingPolicy):
    """Constant ``buffer_k``, one global deadline — the default."""

    name = "static"

    def __init__(self, base_k: int, deadline_s: float | None, max_k: int):
        del max_k
        self.base_k = base_k
        self.deadline_s = deadline_s

    def buffer_k(self, step_idx: int) -> int:
        return self.base_k

    def deadline_for(self, client: FLClient) -> float | None:
        return self.deadline_s


class AdaptivePacing(PacingPolicy):
    """``buffer_k`` scaled by the observed (kept-)arrival rate.

    The first aggregation step runs at the configured ``base_k`` and
    calibrates a target step span ``base_k / rate_0``.  From then on
    ``buffer_k = clamp(round(rate_t * target_span), 1, max_k)`` where
    ``rate_t`` is an exponentially smoothed arrivals-per-simulated-second —
    i.e. the buffer grows exactly as fast as arrivals do.  Rates are
    measured from kept arrivals only (drops never fill the buffer).  All
    inputs are simulated-clock quantities, so the adaptation is as
    deterministic as the clock itself.
    """

    name = "adaptive"

    def __init__(
        self,
        base_k: int,
        deadline_s: float | None,
        max_k: int,
        momentum: float = 0.3,
    ):
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must lie in (0, 1]")
        self.base_k = base_k
        self.deadline_s = deadline_s
        self.max_k = max(max_k, base_k)
        self.momentum = momentum
        self._rate: float | None = None  # EMA arrivals / simulated second
        self._target_span: float | None = None  # calibrated on first step
        self._last_arrival: float | None = None

    def buffer_k(self, step_idx: int) -> int:
        if self._rate is None or self._rate <= 0.0:
            return self.base_k
        if self._target_span is None:
            self._target_span = self.base_k / self._rate
        k = int(round(self._rate * self._target_span))
        return max(1, min(k, self.max_k))

    def deadline_for(self, client: FLClient) -> float | None:
        return self.deadline_s

    def observe_arrival(self, client_id, duration, now, dropped):
        if dropped:
            return
        if self._last_arrival is not None:
            gap = now - self._last_arrival
            if gap > 0.0:
                rate = 1.0 / gap
                m = self.momentum
                self._rate = rate if self._rate is None else (1 - m) * self._rate + m * rate
        self._last_arrival = now

    schema = schema_tag("AdaptivePacing")

    def state_dict(self) -> dict:
        return {
            "schema": self.schema,
            "rate": self._rate,
            "target_span": self._target_span,
            "last_arrival": self._last_arrival,
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self._rate = None if payload["rate"] is None else float(payload["rate"])
        self._target_span = (
            None if payload["target_span"] is None else float(payload["target_span"])
        )
        self._last_arrival = (
            None if payload["last_arrival"] is None else float(payload["last_arrival"])
        )


class QuantilePacing(PacingPolicy):
    """Per-device-class deadline quantiles from completed round times.

    The fleet is split into ``num_classes`` equal-occupancy classes by
    device compute speed at construction (class membership never changes —
    it is hardware, not history).  Each class keeps a sliding window of
    the last ``window`` true durations of its completed work items; once a
    class has seen ``min_samples`` of them, its deadline becomes
    ``quantile(window, q) * slack`` and is re-estimated every arrival —
    the bounded window keeps the per-arrival cost O(window) and lets the
    estimate track the suite as models grow, instead of averaging over a
    run's whole stale history.  Until then the class falls back to the
    global ``deadline_s`` (which may be ``None`` — no deadline while the
    evidence is thin, rather than a guess).  ``buffer_k`` stays static;
    combine with :class:`AdaptivePacing` ideas in a custom policy if both
    are wanted.

    The windows are :class:`~repro.fl.scheduling.fleet.RoundTimeStats`
    ring buffers (one scatter write per arrival, one contiguous-slice
    ``np.quantile`` per re-estimate — no per-arrival ``list()``
    materialization), bit-identical in estimates to the per-class deque
    lists they replaced: each window holds the same multiset of samples
    and quantiles are order-invariant.  Bound to a :class:`FleetStore`
    with matching geometry, the policy shares the store's columnar
    round-time stats and class column instead of keeping its own copies.
    """

    name = "quantile"

    def __init__(
        self,
        base_k: int,
        deadline_s: float | None,
        max_k: int,
        clients: list[FLClient] | None = None,
        num_classes: int = 4,
        q: float = 0.9,
        slack: float = 1.5,
        min_samples: int = 8,
        window: int = 256,
        fleet: FleetStore | None = None,
    ):
        del max_k
        if not 0.0 < q <= 1.0:
            raise ValueError("q must lie in (0, 1]")
        if slack < 1.0:
            raise ValueError("slack must be >= 1 (a sub-1 slack drops the quantile itself)")
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        if window < min_samples:
            raise ValueError("window must be >= min_samples")
        self.base_k = base_k
        self.deadline_s = deadline_s
        self.q = q
        self.slack = slack
        self.min_samples = min_samples
        self.window = window
        clients = clients or []
        num_classes = max(1, min(num_classes, len(clients) or 1))
        self.num_classes = num_classes
        # The fleet store carries the identical equal-occupancy class
        # column and per-class ring buffers; share them when the geometry
        # matches (same class count, same window, same client count).
        self._fleet: FleetStore | None = None
        if (
            fleet is not None
            and fleet.num_classes == num_classes
            and fleet.stats.window == window
            and fleet.num_rows == len(clients)
        ):
            self._fleet = fleet
            self._stats = fleet.stats
            self._class_of: dict[int, int] = {}
        else:
            # Equal-occupancy speed classes: rank by compute speed, cut
            # into num_classes contiguous groups.  Deterministic in the
            # fleet — the same cut FleetStore computes columnar-ly.
            speeds = {c.client_id: c.device.compute_speed for c in clients}
            order = sorted(speeds, key=lambda cid: (speeds[cid], cid))
            self._class_of = {
                cid: min(i * num_classes // max(1, len(order)), num_classes - 1)
                for i, cid in enumerate(order)
            }
            self._stats = RoundTimeStats(num_classes, window)
        self._deadline: list[float | None] = [deadline_s] * num_classes

    def buffer_k(self, step_idx: int) -> int:
        return self.base_k

    def class_of(self, client_id: int) -> int:
        if self._fleet is not None:
            return self._fleet.class_of_id(client_id)
        return self._class_of.get(client_id, 0)

    def deadline_for(self, client: FLClient) -> float | None:
        return self._deadline[self.class_of(client.client_id)]

    def observe_arrival(self, client_id, duration, now, dropped):
        cls = self.class_of(client_id)
        self._stats.observe(cls, float(duration))  # ring: oldest falls off
        if self._stats.count(cls) >= self.min_samples:
            self._deadline[cls] = self._stats.quantile(cls, self.q) * self.slack

    def deadline_quantiles(self) -> tuple[float, ...]:
        return tuple(d for d in self._deadline if d is not None)

    schema = schema_tag("QuantilePacing")

    def state_dict(self) -> dict:
        # Class membership is configuration (a pure function of the fleet),
        # not trajectory; the sliding duration windows and derived deadlines
        # are.  Windows serialize oldest-first — the deque wire order.
        return {
            "schema": self.schema,
            "durations": self._stats.chronological(),
            "deadline": list(self._deadline),
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        durations = payload["durations"]
        if len(durations) != self.num_classes:
            raise ValueError(
                f"checkpoint has {len(durations)} device classes; "
                f"this policy was built with {self.num_classes}"
            )
        self._stats.load_chronological(durations)
        self._deadline = [
            None if d is None else float(d) for d in payload["deadline"]
        ]
