"""Straggler policies: drop (the default) or FedTrans-aware downsizing.

``drop`` leaves the assignment alone; an arrival past its deadline is
discarded by the engine with its wasted compute metered — exactly the
pre-subsystem behavior.  ``downsize`` exploits what a multi-model suite
makes possible: a client whose *predicted* round time busts the deadline
is re-assigned the largest compatible **smaller** model whose estimate
fits, so the slot produces a usable (cheaper) update instead of a metered
drop.  The prediction uses the same latency arithmetic the trainer
realizes (:func:`~repro.fl.scheduling.base.estimate_round_time`, memoized
``macs()``/``nbytes()``), so a downsized dispatch is never dropped by the
clock it was sized against.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ...nn.model import CellModel
from ..client import LocalTrainerConfig
from ..types import FLClient
from .base import StragglerPolicy, estimate_round_time

__all__ = ["DropPolicy", "DownsizePolicy"]


class DropPolicy(StragglerPolicy):
    """Never rewrites assignments; late arrivals drop at the deadline."""

    name = "drop"

    def resolve(self, client, model_ids, deadline, models, trainer, compatible_fn):
        return model_ids, False


class DownsizePolicy(StragglerPolicy):
    """Swap a predicted-late client onto its largest deadline-fitting model.

    Only single-model assignments are rewritten (multi-model dispatches —
    SplitMix's base-net bundles — are structural, not a size choice) and
    only when a *strictly smaller* compatible model fits the deadline;
    otherwise the assignment stands and the ordinary drop path applies.
    Candidate ranking is by memoized ``macs()`` with the model id as a
    deterministic tie-break.
    """

    name = "downsize"

    def resolve(
        self,
        client: FLClient,
        model_ids: list[str],
        deadline: float | None,
        models: Mapping[str, CellModel],
        trainer: LocalTrainerConfig,
        compatible_fn: Callable[[FLClient], list[str]],
    ) -> tuple[list[str], bool]:
        if deadline is None or len(model_ids) != 1:
            return model_ids, False
        assigned = models[model_ids[0]]
        if estimate_round_time(client, assigned, trainer) <= deadline:
            return model_ids, False
        fitting = [
            (models[mid].macs(), mid)
            for mid in compatible_fn(client)
            if models[mid].macs() < assigned.macs()
            and estimate_round_time(client, models[mid], trainer) <= deadline
        ]
        if not fitting:
            return model_ids, False
        return [max(fitting)[1]], True
