"""Straggler policies: drop (the default) or FedTrans-aware downsizing.

``drop`` leaves the assignment alone; an arrival past its deadline is
discarded by the engine with its wasted compute metered — exactly the
pre-subsystem behavior.  ``downsize`` exploits what a multi-model suite
makes possible: a client whose *predicted* round time busts the deadline
is re-assigned the largest compatible **smaller** model whose estimate
fits, so the slot produces a usable (cheaper) update instead of a metered
drop.  The prediction uses the same latency arithmetic the trainer
realizes (:func:`~repro.fl.scheduling.base.estimate_round_time`, memoized
``macs()``/``nbytes()``), so a downsized dispatch is never dropped by the
clock it was sized against.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ...nn.model import CellModel
from ..client import LocalTrainerConfig
from ..types import FLClient
from .base import StragglerPolicy, estimate_round_time

__all__ = ["DropPolicy", "DownsizePolicy"]


class DropPolicy(StragglerPolicy):
    """Never rewrites assignments; late arrivals drop at the deadline."""

    name = "drop"

    def resolve(self, client, model_ids, deadline, models, trainer, compatible_fn):
        return model_ids, False


class DownsizePolicy(StragglerPolicy):
    """Swap a predicted-late client onto its largest deadline-fitting model.

    Only single-model assignments are rewritten (multi-model dispatches —
    SplitMix's base-net bundles — are structural, not a size choice) and
    only when a *strictly smaller* compatible model fits the deadline;
    otherwise the assignment stands and the ordinary drop path applies.
    Candidate ranking is by memoized ``macs()`` with the model id as a
    deterministic tie-break.
    """

    name = "downsize"

    def resolve(
        self,
        client: FLClient,
        model_ids: list[str],
        deadline: float | None,
        models: Mapping[str, CellModel],
        trainer: LocalTrainerConfig,
        compatible_fn: Callable[[FLClient], list[str]],
    ) -> tuple[list[str], bool]:
        if deadline is None or len(model_ids) != 1:
            return model_ids, False
        assigned = models[model_ids[0]]
        if estimate_round_time(client, assigned, trainer) <= deadline:
            return model_ids, False
        fitting = [
            (models[mid].macs(), mid)
            for mid in compatible_fn(client)
            if models[mid].macs() < assigned.macs()
            and estimate_round_time(client, models[mid], trainer) <= deadline
        ]
        if not fitting:
            return model_ids, False
        return [max(fitting)[1]], True

    def resolve_wave(
        self,
        clients: list[FLClient],
        assignments: Mapping[int, list[str]],
        deadlines: Mapping[int, float | None],
        models: Mapping[str, CellModel],
        trainer: LocalTrainerConfig,
        compatible_fn: Callable[[FLClient], list[str]],
        fleet=None,
    ) -> dict[int, tuple[list[str], bool]]:
        """Batch the predicted-late prescreen over the fleet's device columns.

        One vectorized :meth:`FleetStore.predict_round_times` call per
        distinct assigned model replaces a Python estimate per client;
        only the clients the prescreen flags as late run the per-client
        downsize search.  The vectorized estimates are bit-identical to
        the scalar estimator (same IEEE expression over the same inputs),
        so the outcome is exactly the per-client loop's.
        """
        if fleet is None:
            return super().resolve_wave(
                clients, assignments, deadlines, models, trainer, compatible_fn
            )
        results: dict[int, tuple[list[str], bool]] = {}
        # Only single-model assignments with a live deadline are downsize
        # candidates; everything else passes through untouched (exactly
        # resolve()'s own early exit).  A client outside the fleet's rows
        # falls back to the scalar resolve.
        groups: dict[str, list[FLClient]] = {}
        for client in clients:
            cid = client.client_id
            mids = assignments[cid]
            if deadlines[cid] is None or len(mids) != 1:
                results[cid] = (mids, False)
            elif cid in fleet:
                results[cid] = (mids, False)
                groups.setdefault(mids[0], []).append(client)
            else:
                results[cid] = self.resolve(
                    client, mids, deadlines[cid], models, trainer, compatible_fn
                )
        for mid, group in groups.items():
            rows = fleet.rows_of([c.client_id for c in group])
            est = fleet.predict_round_times(rows, models[mid], trainer)
            dls = np.asarray([deadlines[c.client_id] for c in group], dtype=np.float64)
            for client, late in zip(group, est > dls):
                if late:
                    results[client.client_id] = self.resolve(
                        client,
                        assignments[client.client_id],
                        deadlines[client.client_id],
                        models,
                        trainer,
                        compatible_fn,
                    )
        return results
