"""Pluggable scheduling subsystem: selection, pacing, straggler policies.

Three policy seams (see :mod:`~repro.fl.scheduling.base`) plus two stores:
the columnar :class:`~repro.fl.scheduling.fleet.FleetStore` (structure-of-
arrays fleet state — ids, device classes, utilities, round-time windows —
that makes a scheduler tick O(active) at million-client registration) and
the sparse :class:`~repro.fl.scheduling.store.ClientStateStore` for
per-client strategy state.  Policies are resolved by name through the
``make_*`` factories below, which is what ``CoordinatorConfig.selector`` /
``pacing`` / ``straggler`` and the matching CLI flags feed; availability
churn models (:mod:`~repro.fl.scheduling.availability`) ride the
``availability`` selector via ``--availability-trace`` specs.
"""

from __future__ import annotations

from ..types import FLClient
from .availability import (
    AvailabilityModel,
    BernoulliAvailability,
    DiurnalAvailability,
    TraceAvailability,
    parse_availability,
)
from .base import ClientSelector, PacingPolicy, StragglerPolicy, estimate_round_time
from .fleet import FleetStore, FleetView, RoundTimeStats, positions_to_rows
from .pacing import AdaptivePacing, QuantilePacing, StaticPacing
from .selectors import (
    AvailabilityAwareSelector,
    OortSelector,
    UniformSelector,
    uniform_choice,
)
from .store import ClientStateStore
from .straggler import DownsizePolicy, DropPolicy

__all__ = [
    "ClientSelector",
    "PacingPolicy",
    "StragglerPolicy",
    "estimate_round_time",
    "UniformSelector",
    "AvailabilityAwareSelector",
    "OortSelector",
    "uniform_choice",
    "StaticPacing",
    "AdaptivePacing",
    "QuantilePacing",
    "DropPolicy",
    "DownsizePolicy",
    "ClientStateStore",
    "FleetStore",
    "FleetView",
    "RoundTimeStats",
    "positions_to_rows",
    "AvailabilityModel",
    "BernoulliAvailability",
    "DiurnalAvailability",
    "TraceAvailability",
    "parse_availability",
    "SELECTOR_POLICIES",
    "PACING_POLICIES",
    "STRAGGLER_POLICIES",
    "make_selector",
    "make_pacing",
    "make_straggler",
]

SELECTOR_POLICIES = ("uniform", "availability", "oort")
PACING_POLICIES = ("static", "adaptive", "quantile")
STRAGGLER_POLICIES = ("drop", "downsize")

_SELECTORS = {
    "uniform": UniformSelector,
    "availability": AvailabilityAwareSelector,
    "oort": OortSelector,
}
_PACING = {
    "static": StaticPacing,
    "adaptive": AdaptivePacing,
    "quantile": QuantilePacing,
}
_STRAGGLERS = {
    "drop": DropPolicy,
    "downsize": DownsizePolicy,
}


def make_selector(
    name: str, seed: int = 0, availability_trace: str | None = None
) -> ClientSelector:
    """Instantiate a client selector by policy name.

    ``availability_trace`` is an availability-model spec string (see
    :func:`~repro.fl.scheduling.availability.parse_availability`) and is
    only meaningful for the ``availability`` selector.
    """
    try:
        cls = _SELECTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown selector {name!r}; choose from {SELECTOR_POLICIES}"
        ) from None
    if availability_trace is not None:
        if cls is not AvailabilityAwareSelector:
            raise ValueError(
                f"availability_trace only applies to the 'availability' "
                f"selector, not {name!r}"
            )
        return cls(seed=seed, model=parse_availability(availability_trace))
    return cls(seed=seed)


def make_pacing(
    name: str,
    base_k: int,
    deadline_s: float | None,
    max_k: int,
    clients: list[FLClient] | None = None,
    fleet: FleetStore | None = None,
) -> PacingPolicy:
    """Instantiate a pacing policy by name.

    ``base_k`` is the resolved static buffer size (config or its
    clients_per_round-derived default), ``max_k`` the in-flight concurrency
    (the adaptive buffer never outgrows what can arrive), and ``clients``
    the fleet (quantile pacing derives its device classes from it).  When
    ``fleet`` — the engine's columnar store — is given, quantile pacing
    shares its class column and round-time ring buffers instead of keeping
    private copies.
    """
    try:
        cls = _PACING[name]
    except KeyError:
        raise ValueError(
            f"unknown pacing policy {name!r}; choose from {PACING_POLICIES}"
        ) from None
    if cls is QuantilePacing:
        return cls(base_k, deadline_s, max_k, clients=clients, fleet=fleet)
    return cls(base_k, deadline_s, max_k)


def make_straggler(name: str) -> StragglerPolicy:
    """Instantiate a straggler policy by name."""
    try:
        cls = _STRAGGLERS[name]
    except KeyError:
        raise ValueError(
            f"unknown straggler policy {name!r}; choose from {STRAGGLER_POLICIES}"
        ) from None
    return cls()
