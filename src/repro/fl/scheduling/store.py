"""Sparse per-client state with inactivity eviction.

``ClientManager`` used to keep a utility dict per client it ever saw and
never let go — at million-client registration counts that is memory
proportional to the *registered* fleet even though only a sliver is ever
in flight.  :class:`ClientStateStore` keeps memory proportional to the
*active* fleet instead: state materializes lazily on first participation
and is evicted after ``evict_after`` rounds of inactivity.  Eviction is
safe because utility magnitudes are already bounded by decay/clamp — a
rehydrated client restarts from the neutral prior (all-zero utilities,
i.e. exactly a fresh client) and relearns within a few participations.
"""

from __future__ import annotations

import sys

from ...stateful import Stateful, check_schema, schema_tag

__all__ = ["ClientStateStore"]


class ClientStateStore(Stateful):
    """Lazily materialized ``client_id -> {key: float}`` state with eviction.

    ``evict_after=None`` disables eviction entirely (bit-identical to the
    dense behavior); ``evict_after=n`` drops any client whose last
    participation is more than ``n`` rounds behind the counter passed to
    :meth:`advance`.
    """

    def __init__(self, evict_after: int | None = None):
        if evict_after is not None and evict_after < 1:
            raise ValueError("evict_after must be >= 1 (None disables eviction)")
        self.evict_after = evict_after
        self._state: dict[int, dict[str, float]] = {}
        self._last_active: dict[int, int] = {}
        self._round = 0
        self.evicted_total = 0

    # ------------------------------------------------------------------
    @property
    def data(self) -> dict[int, dict[str, float]]:
        """The raw backing dict (shared, not a copy) — for legacy accessors."""
        return self._state

    def get(self, client_id: int) -> dict[str, float] | None:
        """This client's state, or ``None`` if never materialized/evicted."""
        return self._state.get(client_id)

    def materialize(self, client_id: int) -> dict[str, float]:
        """State for a participating client, created on first touch."""
        st = self._state.get(client_id)
        if st is None:
            st = self._state[client_id] = {}
        self._last_active[client_id] = self._round
        return st

    def advance(self, round_idx: int) -> list[int]:
        """Move the activity clock; evict and return the long-inactive ids."""
        self._round = max(self._round, round_idx)
        if self.evict_after is None:
            return []
        dead = [
            cid
            for cid, last in self._last_active.items()
            if self._round - last > self.evict_after
        ]
        for cid in dead:
            self._state.pop(cid, None)
            del self._last_active[cid]
        if dead:
            # Rebuild the containers: a dict's hash table never shrinks, so
            # after a mass eviction the old one would keep the registered
            # fleet's slot count allocated forever.  O(live) per eviction
            # round, which is exactly the footprint we are bounding.
            self._state = dict(self._state)
            self._last_active = dict(self._last_active)
        self.evicted_total += len(dead)
        return dead

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._state)

    def __contains__(self, client_id: int) -> bool:
        return client_id in self._state

    def values(self):
        return self._state.values()

    def items(self):
        return self._state.items()

    def resident_clients(self) -> int:
        return len(self._state)

    def resident_bytes(self) -> int:
        """Approximate resident footprint of the stored state.

        Container + per-entry sizes via ``sys.getsizeof`` — good enough for
        the dense-vs-sparse memory comparisons the benchmarks report
        (the ratio is dominated by entry counts, not per-object slack).
        """
        total = sys.getsizeof(self._state) + sys.getsizeof(self._last_active)
        for cid, st in self._state.items():
            total += sys.getsizeof(cid) + sys.getsizeof(st)
            for k, v in st.items():
                total += sys.getsizeof(k) + sys.getsizeof(v)
        return total

    # ------------------------------------------------------------------
    schema = schema_tag("ClientStateStore")

    def state_dict(self) -> dict:
        """JSON-friendly snapshot (checkpoint/restore round-trips)."""
        return {
            "schema": self.schema,
            "evict_after": self.evict_after,
            "round": self._round,
            "evicted_total": self.evicted_total,
            "state": {str(cid): dict(st) for cid, st in self._state.items()},
            "last_active": {str(cid): r for cid, r in self._last_active.items()},
        }

    def load_state_dict(self, payload: dict) -> None:
        if "schema" in payload:  # pre-protocol payloads carried no tag
            check_schema(payload, self.schema)
        self.evict_after = payload.get("evict_after")
        self.evicted_total = int(payload.get("evicted_total", 0))
        self._round = int(payload.get("round", 0))
        self._state = {int(cid): dict(st) for cid, st in payload["state"].items()}
        self._last_active = {
            int(cid): int(r) for cid, r in payload.get("last_active", {}).items()
        }
        # A checkpoint written without activity stamps must not make its
        # clients immortal under an eviction config: stamp them now.
        for cid in self._state:
            self._last_active.setdefault(cid, self._round)
