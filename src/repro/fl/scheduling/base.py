"""Policy interfaces of the scheduling subsystem.

Who participates, when the server aggregates, and what happens to a
predicted-late client used to be inline coordinator code (a bare
``select_uniform`` call, a hard-coded global ``deadline_s`` drop, a static
``buffer_k``).  This package makes the three decisions first-class
policies:

* :class:`ClientSelector` — which clients join a round / dispatch wave.
* :class:`PacingPolicy` — how many arrivals trigger a buffered
  aggregation (``buffer_k``) and the per-client deadline after which the
  server stops waiting.
* :class:`StragglerPolicy` — what to do with a client whose *predicted*
  round time exceeds its deadline, decided at dispatch time (before any
  compute is spent).

**Determinism contract.** Policies must not introduce hidden
nondeterminism: any randomness either consumes the coordinator RNG passed
into the hook (the default uniform selector) or derives from
``np.random.SeedSequence(seed, spawn_key=...)`` streams owned by the
policy (the availability selector).  The default stack — ``uniform``
selection, ``static`` pacing, ``drop`` stragglers — consumes the
coordinator RNG in exactly the pre-subsystem order, so default-config runs
stay bit-identical to the inline implementation they replaced.

Feedback flows through ``observe_*`` hooks: the engines call them with
completed updates and arrival timings, never mid-decision, so a policy
cannot perturb the work it is currently scheduling.

**Durability contract.** Every policy is :class:`~repro.stateful.Stateful`:
the ABCs provide schema-tagged defaults for stateless policies (uniform,
static, drop, downsize), and stateful ones (oort utilities, adaptive /
quantile pacing) override both methods so a resumed run replays the exact
trajectory an uninterrupted one would have taken.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, Mapping

import numpy as np

from ...device.latency import client_round_time
from ...nn.model import CellModel
from ...stateful import Stateful, check_schema, schema_tag
from ..client import LocalTrainerConfig
from ..types import ClientUpdate, FLClient

__all__ = [
    "ClientSelector",
    "PacingPolicy",
    "StragglerPolicy",
    "estimate_round_time",
]


def estimate_round_time(
    client: FLClient, model: CellModel, trainer: LocalTrainerConfig
) -> float:
    """Predicted download + train + upload seconds for one work item.

    Exactly the arithmetic :class:`~repro.fl.client.LocalTrainer` uses for
    the realized ``ClientUpdate.round_time`` (same memoized ``macs()`` /
    ``nbytes()`` accessors, same effective batch size), so a straggler
    policy that admits a client under this estimate is never contradicted
    by the simulated clock afterwards.
    """
    return client_round_time(
        client.device,
        model.macs(),
        model.nbytes(),
        min(trainer.batch_size, client.data.num_train),
        trainer.local_steps,
    )


class ClientSelector(Stateful, ABC):
    """Chooses the participants of a round (sync) or dispatch wave (async)."""

    name: str = "selector"

    def state_dict(self) -> dict:
        """Default for stateless selectors: a bare schema tag."""
        return {"schema": schema_tag(type(self).__name__)}

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, schema_tag(type(self).__name__))

    def bind_fleet(self, fleet) -> None:
        """Attach the engine's columnar :class:`FleetStore`.

        Stateless selectors ignore it; stateful ones (oort) move their
        per-client state into the store's columns so selection is a
        vectorized gather and ``evict_after`` eviction bounds it.
        """

    @abstractmethod
    def select(
        self,
        round_idx: int,
        clients,
        num: int,
        rng: np.random.Generator,
    ) -> list[FLClient]:
        """Pick up to ``num`` participants from ``clients``.

        ``clients`` is the currently eligible pool (the async engine
        excludes in-flight clients): a ``list[FLClient]`` or a columnar
        :class:`~repro.fl.scheduling.fleet.FleetView` — both present the
        same candidate ordering, and implementations must produce the
        identical selection stream for either shape.  Implementations
        clamp to the pool size — the caller surfaces under-provisioning
        in the round record — but must raise on ``num < 1`` or an empty
        pool.
        """

    def observe_round(self, round_idx: int, updates: Iterable[ClientUpdate]) -> None:
        """Feedback hook: the round's completed updates (post-aggregation)."""


class PacingPolicy(Stateful, ABC):
    """Controls aggregation cadence (``buffer_k``) and per-client deadlines."""

    name: str = "pacing"

    def state_dict(self) -> dict:
        """Default for stateless pacing policies: a bare schema tag."""
        return {"schema": schema_tag(type(self).__name__)}

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, schema_tag(type(self).__name__))

    @abstractmethod
    def buffer_k(self, step_idx: int) -> int:
        """Arrivals that trigger aggregation step ``step_idx``."""

    @abstractmethod
    def deadline_for(self, client: FLClient) -> float | None:
        """Seconds after dispatch before this client's slot is reclaimed.

        ``None`` disables the deadline (the server waits indefinitely).
        """

    def observe_arrival(
        self, client_id: int, duration: float, now: float, dropped: bool
    ) -> None:
        """Feedback hook: one completed work item.

        ``duration`` is the client's *true* simulated round time (even for
        dropped arrivals, whose event fired at the deadline instead) and
        ``now`` the simulated clock at the event.
        """

    def deadline_quantiles(self) -> tuple[float, ...]:
        """Currently active per-class deadlines, for scheduler metrics."""
        return ()


class StragglerPolicy(Stateful, ABC):
    """Decides the fate of a predicted-late client at dispatch time."""

    name: str = "straggler"

    def state_dict(self) -> dict:
        """Default for stateless straggler policies: a bare schema tag."""
        return {"schema": schema_tag(type(self).__name__)}

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, schema_tag(type(self).__name__))

    @abstractmethod
    def resolve(
        self,
        client: FLClient,
        model_ids: list[str],
        deadline: float | None,
        models: Mapping[str, CellModel],
        trainer: LocalTrainerConfig,
        compatible_fn: Callable[[FLClient], list[str]],
    ) -> tuple[list[str], bool]:
        """Return ``(assignment, downsized)`` for one dispatch.

        Called before any training runs.  ``model_ids`` is the strategy's
        assignment; a policy may substitute a cheaper one (``downsized``
        True) or leave it alone, in which case an arrival past ``deadline``
        is dropped by the engine exactly as before this subsystem existed.
        ``compatible_fn`` is :meth:`Strategy.compatible_models` — the
        substitute must come from the client's compatible set.
        """

    def resolve_wave(
        self,
        clients: list[FLClient],
        assignments: Mapping[int, list[str]],
        deadlines: Mapping[int, float | None],
        models: Mapping[str, CellModel],
        trainer: LocalTrainerConfig,
        compatible_fn: Callable[[FLClient], list[str]],
        fleet=None,
    ) -> dict[int, tuple[list[str], bool]]:
        """Resolve one whole dispatch wave: ``{client_id: (assignment, downsized)}``.

        The default loops :meth:`resolve` per client in wave order.
        Policies with a vectorizable predicate (downsize's predicted-late
        prescreen) override this and use ``fleet`` — the engine's columnar
        :class:`~repro.fl.scheduling.fleet.FleetStore` — to batch the
        estimates; results must match the per-client loop exactly.
        """
        del fleet
        return {
            client.client_id: self.resolve(
                client,
                assignments[client.client_id],
                deadlines[client.client_id],
                models,
                trainer,
                compatible_fn,
            )
            for client in clients
        }
