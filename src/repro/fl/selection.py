"""Client selection policies (deprecated shim).

Selection moved into the scheduling subsystem
(:mod:`repro.fl.scheduling`): pick a policy with
``CoordinatorConfig.selector`` / ``--selector``, or call
:func:`repro.fl.scheduling.uniform_choice` directly.  This module remains
so pre-subsystem imports keep working.
"""

from __future__ import annotations

import warnings

import numpy as np

from .scheduling.selectors import uniform_choice
from .types import FLClient

__all__ = ["select_uniform"]


def select_uniform(
    clients: list[FLClient], num: int, rng: np.random.Generator
) -> list[FLClient]:
    """Deprecated alias of :func:`repro.fl.scheduling.uniform_choice`."""
    warnings.warn(
        "select_uniform is deprecated; use repro.fl.scheduling.uniform_choice "
        "or CoordinatorConfig.selector='uniform'",
        DeprecationWarning,
        stacklevel=2,
    )
    return uniform_choice(clients, num, rng)
