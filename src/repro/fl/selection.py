"""Client selection policies."""

from __future__ import annotations

import numpy as np

from .types import FLClient

__all__ = ["select_uniform"]


def select_uniform(
    clients: list[FLClient], num: int, rng: np.random.Generator
) -> list[FLClient]:
    """Uniform random selection without replacement (Algorithm 1's Select)."""
    if not clients:
        raise ValueError("no registered clients")
    num = min(num, len(clients))
    idx = rng.choice(len(clients), size=num, replace=False)
    return [clients[i] for i in idx]
