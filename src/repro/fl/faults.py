"""Deterministic fault injection, bounded recovery, and update quarantine.

FedTrans targets fleets of flaky edge clients, but until this module the
engine only survived the failures the paper models (stragglers, deadline
drops): a worker-process crash, a torn shared-memory segment, or a
NaN-poisoned client update killed or corrupted the whole run.  This module
supplies the three pieces of the fault-tolerance story:

* **Deterministic fault injection** — :class:`FaultPlan` draws every fault
  decision from ``SeedSequence(seed, spawn_key=(FAULT_DOMAIN, round,
  client, sub))``, a private integer domain tag beside the work-item RNG's
  ``(round, client, sub)`` spawn keys, so a chaos run is replayable
  bit-for-bit: the same spec + seed injects the same crashes at the same
  work items on every backend.  Faults are drawn **once per item** (at
  attempt 0); a retried item runs clean, which is what lets a recovered
  run converge back onto the fault-free trajectory.
* **Bounded recovery** — :class:`RetryPolicy` caps attempts per work item
  and charges exponential backoff into the item's *simulated* round time
  (``VirtualClock`` seconds, never wall-clock — CONTRACTS.md I2) for
  task-level failures.  Infrastructure faults (worker crash, shm
  attach/publish) cost **zero** simulated time on recovery: the fleet's
  devices did not run slower because the coordinator's pool died, and
  charging nothing is precisely what makes a crash-recovered run
  bit-identical to the fault-free run at the same seed (CONTRACTS.md
  I10).  An item that exhausts its attempts becomes an
  :class:`ItemFailure` sentinel in the executor's result slot; the
  coordinator folds it into the drop/straggler accounting instead of
  aborting the round.
* **Update quarantine** — :class:`UpdateValidator` screens every client
  update before aggregation: a NaN/Inf scan over params/state/grad plus a
  norm-outlier gate keyed off a running per-model norm estimate.  Rejects
  divert into the quarantine ledger (``TrainingLog.quarantined_updates`` +
  :class:`~repro.fl.types.FaultRecord`) rather than Eq. 5.  The gate never
  perturbs a clean run: validation mutates nothing it accepts, so a run
  with quarantine enabled and no poisoned updates is bit-identical to the
  same run with it disabled.

The five injectable fault kinds (spec string ``"kind=rate,..."``):

========  ==============================================================
``crash``   SIGKILL the worker process mid-task (process backend); on
            serial/thread the same decision raises
            :class:`InjectedWorkerCrash` (an infrastructure fault — the
            in-process stand-in for a dead worker).
``exc``     raise :class:`InjectedTaskError` from the work function (a
            task-level fault: retries charge simulated backoff).
``shm``     shared-memory failure: worker-side the item's attach raises
            :class:`InjectedShmFault` before the snapshot chain loads;
            coordinator-side each publish ordinal may fail once and is
            retried (process backend only for the publish half).
``hang``    the client's simulated round time is multiplied by
            ``hang_factor`` — a deterministic virtual-time hang that
            pushes the arrival past async deadlines and into the
            existing straggler/drop accounting.  (Real wall-clock task
            timeouts would violate I2; the engine's notion of a timeout
            *is* the virtual deadline.)
``poison``  the returned update's parameters are overwritten with NaN
            (or +inf, a second deterministic draw) after training — the
            quarantine gate's target.
========  ==============================================================
"""

from __future__ import annotations

import math
import os
import signal
from dataclasses import dataclass

import numpy as np

from ..stateful import Stateful, check_schema, schema_tag
from .types import ClientUpdate

__all__ = [
    "FAULT_KINDS",
    "FaultConfig",
    "FaultPlan",
    "ItemFaults",
    "RetryPolicy",
    "ItemFailure",
    "QuarantineConfig",
    "UpdateValidator",
    "InjectedFault",
    "InjectedWorkerCrash",
    "InjectedTaskError",
    "InjectedShmFault",
    "SnapshotChainError",
    "is_infrastructure_fault",
    "fault_kind",
]

FAULT_KINDS = ("crash", "exc", "shm", "hang", "poison")

# Integer domain tag separating fault draws from work-item RNG streams.
# SeedSequence spawn keys are integer tuples; the work items use
# (round, client, sub) directly, so any distinct leading tag keeps the
# fault streams disjoint from every training stream.
FAULT_DOMAIN = 0xFA017
# Sub-domain for coordinator-side snapshot-publish faults (keyed by
# publish ordinal, not by work item).
PUBLISH_DOMAIN = 0x9B15


class InjectedFault(RuntimeError):
    """Base class of every deterministically injected failure."""


class InjectedWorkerCrash(InjectedFault):
    """Stand-in for a dead worker on backends with no process to kill."""


class InjectedTaskError(InjectedFault):
    """A task-level exception raised from inside the work function."""


class InjectedShmFault(InjectedFault):
    """A simulated shared-memory attach or publish failure."""


class SnapshotChainError(RuntimeError):
    """A worker could not attach a segment of the published snapshot chain.

    Raised with the missing segment's name, the expected chain, and the
    worker's attached set (the opaque ``FileNotFoundError`` this replaces
    named none of them).  Classified as an infrastructure fault: after a
    pool heal republishes a fresh chain, a re-dispatched item should not
    see it again — and recovering from it must not charge simulated time.
    """


def is_infrastructure_fault(err: BaseException) -> bool:
    """Whether recovering from ``err`` is free in simulated time.

    Infrastructure faults happen to the *coordinator's* machinery (dead
    pool, torn segment) — the simulated fleet never observed them, so
    retries charge no virtual-clock backoff and a recovered run stays
    bit-identical to a fault-free one.  Task-level failures happened "on
    the device" and their retries cost simulated backoff time.
    """
    return isinstance(err, (InjectedWorkerCrash, InjectedShmFault, SnapshotChainError))


def fault_kind(err: BaseException) -> str:
    """Ledger kind for an exception a recovery action handled."""
    if isinstance(err, InjectedWorkerCrash):
        return "worker_crash"
    if isinstance(err, (InjectedShmFault, SnapshotChainError)):
        return "shm"
    return "task_error"


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultConfig:
    """Per-kind injection rates in [0, 1] plus the hang multiplier.

    Built from a ``--faults`` spec string like ``"crash=0.05,poison=0.2"``
    (unnamed kinds default to 0); :meth:`spec` round-trips the canonical
    form, which is what the run-registry config hash sees.
    """

    crash: float = 0.0
    exc: float = 0.0
    shm: float = 0.0
    hang: float = 0.0
    poison: float = 0.0
    hang_factor: float = 10.0

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate {kind}={rate!r} must lie in [0, 1]")
        if self.hang_factor <= 1.0:
            raise ValueError(
                f"hang_factor must exceed 1 (it multiplies round time), "
                f"got {self.hang_factor!r}"
            )

    @classmethod
    def parse(cls, spec: str) -> "FaultConfig":
        """Parse ``"kind=rate,kind=rate,..."`` (``hang_factor=`` allowed)."""
        values: dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in (*FAULT_KINDS, "hang_factor"):
                raise ValueError(
                    f"bad --faults entry {part!r}; expected kind=rate with "
                    f"kind in {(*FAULT_KINDS, 'hang_factor')}"
                )
            if key in values:
                raise ValueError(f"duplicate --faults entry for {key!r}")
            try:
                values[key] = float(raw)
            except ValueError:
                raise ValueError(f"bad --faults rate {raw!r} for {key!r}") from None
        if not values:
            raise ValueError(f"empty --faults spec {spec!r}")
        return cls(**values)

    def spec(self) -> str:
        """Canonical spec string (kinds in declaration order, zeros elided)."""
        parts = [f"{k}={getattr(self, k):g}" for k in FAULT_KINDS if getattr(self, k)]
        if self.hang and self.hang_factor != 10.0:
            parts.append(f"hang_factor={self.hang_factor:g}")
        return ",".join(parts)

    def any_enabled(self) -> bool:
        return any(getattr(self, k) for k in FAULT_KINDS)


@dataclass(frozen=True)
class ItemFaults:
    """The fault decision for one work item: which kinds fire this attempt."""

    crash: bool = False
    exc: bool = False
    shm: bool = False
    hang: bool = False
    poison: bool = False
    poison_inf: bool = False
    hang_factor: float = 10.0
    item: str = ""

    def fire_pre(self, worker_side: bool) -> None:
        """Raise (or kill the process) for the pre-training fault kinds.

        Order is fixed — shm, crash, exc — so the same decision produces
        the same failure classification on every backend.  ``worker_side``
        selects a real SIGKILL for ``crash`` (the pool worker dies
        mid-task and the coordinator sees ``BrokenProcessPool``); in-process
        backends raise :class:`InjectedWorkerCrash` instead, which the
        retry path classifies identically (infrastructure, zero simulated
        cost).
        """
        if self.shm:
            raise InjectedShmFault(f"injected shm attach failure for {self.item}")
        if self.crash:
            if worker_side:
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedWorkerCrash(f"injected worker crash for {self.item}")
        if self.exc:
            raise InjectedTaskError(f"injected task exception for {self.item}")

    def apply_post(self, update: ClientUpdate) -> None:
        """Apply the post-training fault kinds to a finished update."""
        if self.hang:
            update.round_time *= self.hang_factor
        if self.poison:
            value = np.inf if self.poison_inf else np.nan
            for arr in update.params.values():
                arr.fill(value)


_CLEAN = ItemFaults()


class FaultPlan:
    """Deterministic per-work-item fault decisions for one run.

    Stateless after construction: every decision is a pure function of
    ``(seed, round, client, sub)``, so coordinator and workers holding the
    same plan agree on every item without any communication — and the
    coordinator can re-derive a crashed item's decision to know which
    re-dispatched item must advance its attempt counter.
    """

    def __init__(self, seed: int, config: FaultConfig):
        self.seed = seed
        self.config = config

    def item_faults(self, round_idx: int, item) -> ItemFaults:
        """The fault decision for one ``TrainItem`` (attempt 0 only).

        A fixed-width draw (one uniform per kind, in :data:`FAULT_KINDS`
        order, plus the poison-value draw) keeps decisions independent
        across kinds: toggling one rate in the spec never shifts another
        kind's stream.
        """
        cfg = self.config
        ss = np.random.SeedSequence(
            self.seed,
            spawn_key=(FAULT_DOMAIN, round_idx, item.client_id, item.sub_idx),
        )
        draws = np.random.default_rng(ss).random(len(FAULT_KINDS) + 1)
        fired = {
            kind: bool(draws[i] < getattr(cfg, kind))
            for i, kind in enumerate(FAULT_KINDS)
        }
        if not any(fired.values()):
            return _CLEAN
        return ItemFaults(
            **fired,
            poison_inf=bool(draws[len(FAULT_KINDS)] < 0.5),
            hang_factor=cfg.hang_factor,
            item=f"(round={round_idx}, client={item.client_id}, sub={item.sub_idx})",
        )

    def publish_fails(self, ordinal: int) -> bool:
        """Whether snapshot publish number ``ordinal`` fails (once)."""
        if not self.config.shm:
            return False
        ss = np.random.SeedSequence(
            self.seed, spawn_key=(FAULT_DOMAIN, PUBLISH_DOMAIN, ordinal)
        )
        return bool(np.random.default_rng(ss).random() < self.config.shm)


# ----------------------------------------------------------------------
# recovery policy + permanent-failure sentinel
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff in *simulated* seconds.

    ``max_attempts`` counts executions, not retries: 3 means the original
    try plus two retries.  ``backoff(n)`` is the simulated delay charged
    before attempt ``n`` (1-based retry count) — added to the item's
    ``round_time`` for task-level failures only (see
    :func:`is_infrastructure_fault`), so in async mode a flaky client's
    retries genuinely push it toward the deadline.
    """

    max_attempts: int = 3
    backoff_s: float = 0.5
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff(self, retry: int) -> float:
        return self.backoff_s * self.backoff_factor ** (retry - 1)


@dataclass(frozen=True)
class ItemFailure:
    """A work item that exhausted its retry budget.

    Returned in the item's result slot (train rounds only — a failed
    evaluation has no graceful degradation and raises instead), so the
    coordinator can exclude exactly the failed clients from aggregation
    while the rest of the round proceeds.
    """

    model_id: str
    client_id: int
    sub_idx: int
    error: str
    attempts: int


# ----------------------------------------------------------------------
# update quarantine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QuarantineConfig:
    """Validation gates applied to every update before aggregation.

    ``norm_multiplier`` rejects an update whose parameter L2 norm exceeds
    that multiple of the model's running mean norm (0 disables the gate);
    the estimate warms up over ``min_history`` accepted updates per model
    before it gates anything, so legitimately large early updates pass.
    The NaN/Inf scan is unconditional.
    """

    norm_multiplier: float = 8.0
    min_history: int = 4

    def __post_init__(self) -> None:
        if self.norm_multiplier < 0:
            raise ValueError(
                f"norm_multiplier must be >= 0 (0 disables), got {self.norm_multiplier}"
            )
        if self.min_history < 1:
            raise ValueError(f"min_history must be >= 1, got {self.min_history}")


class UpdateValidator(Stateful):
    """Screens client updates; accepted ones feed its running norm estimate.

    Deterministic and side-effect-free on rejection: rejected updates
    never contribute to the per-model norm statistics, so one poisoned
    client cannot widen the gate for the next one.  The running state is
    part of the coordinator's checkpoint payload — a resumed run gates
    exactly like the uninterrupted one (CONTRACTS.md I9).
    """

    schema = schema_tag("UpdateValidator")

    def __init__(self, config: QuarantineConfig | None = None):
        self.config = config or QuarantineConfig()
        self._norm_sum: dict[str, float] = {}
        self._norm_count: dict[str, int] = {}

    def admit(self, update: ClientUpdate) -> str | None:
        """``None`` to admit; a human-readable rejection reason otherwise."""
        for scope_name, tree in (
            ("params", update.params),
            ("state", update.state),
            ("grad", update.grad),
        ):
            for key, arr in tree.items():
                if not np.isfinite(arr).all():
                    # Param keys are prefixed with a per-process clone tag
                    # ("c0003/fc.w"); only the stable suffix may appear in
                    # the rejection reason or event logs diverge across
                    # backends (CONTRACTS.md I10).
                    name = key.rsplit("/", 1)[-1]
                    return (
                        f"non-finite values in {scope_name}[{name}] from "
                        f"client {update.client_id} for model {update.model_id}"
                    )
        norm = math.sqrt(
            sum(float((arr * arr).sum()) for arr in update.params.values())
        )
        cfg = self.config
        mid = update.model_id
        count = self._norm_count.get(mid, 0)
        if cfg.norm_multiplier > 0 and count >= cfg.min_history:
            mean = self._norm_sum[mid] / count
            if norm > cfg.norm_multiplier * mean:
                return (
                    f"update norm {norm:.6g} from client {update.client_id} "
                    f"exceeds {cfg.norm_multiplier:g}x the running mean "
                    f"{mean:.6g} for model {mid}"
                )
        self._norm_sum[mid] = self._norm_sum.get(mid, 0.0) + norm
        self._norm_count[mid] = count + 1
        return None

    def state_dict(self) -> dict:
        return {
            "schema": self.schema,
            "norms": [
                {
                    "model_id": mid,
                    "sum": self._norm_sum[mid],
                    "count": self._norm_count[mid],
                }
                for mid in sorted(self._norm_sum)
            ],
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        self._norm_sum = {e["model_id"]: float(e["sum"]) for e in payload["norms"]}
        self._norm_count = {e["model_id"]: int(e["count"]) for e in payload["norms"]}
