"""Transport codecs: compressed bytes on both directions of the round loop.

FedTrans targets edge fleets where client uplink bytes — not server FLOPs —
are the binding cost.  This module is the codec layer for both wire
directions:

* **client→server updates** — per-tensor int8 / bf16 quantization with
  server-side error-feedback residuals, and top-k sparsification with
  run-length-encoded index masks.  Lossy codecs operate on the *delta*
  against the dispatch-time server weights (the standard sparsified-update
  scheme), so a 1% top-k keeps the 1% of coordinates that moved most.
  The ``rle`` update codec is the lossless option: a byte-level diff
  against the reference that falls back to raw when it cannot help.
* **server→worker snapshots** — byte-level run-length delta encoding over
  version-changed tensors inside delta segments (:mod:`~repro.fl.shm`
  stacks it on the existing full/delta chain); always lossless.

The simulation never ships real packets, so "encoding" means: produce the
actual encoded byte payload (its length is the on-wire cost the ledger
meters), decode it back, and hand the *decoded* values to aggregation —
lossy codecs therefore change the trajectory exactly as they would in a
real deployment, and lossless codecs are bit-identical by construction
(CONTRACTS.md I11).  Updates containing non-finite values bypass the
codec entirely (shipped raw) so the quarantine NaN scan still sees the
poison it exists to catch.

Error feedback keeps quantization honest across rounds: the residual
``d - decode(encode(d))`` is stored per ``(client, model, scope, tensor)``
and added to the next delta from the same client before encoding, so
systematic quantization error accumulates into later updates instead of
being lost.  Residual state implements :class:`~repro.stateful.Stateful`
so compressed runs checkpoint/resume bit-identically (CONTRACTS.md I9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stateful import Stateful, check_schema, schema_tag

__all__ = [
    "UPDATE_CODECS",
    "TransportConfig",
    "TransportCodec",
    "rle_encode_bytes",
    "rle_decode_bytes",
    "encode_indices",
    "decode_indices",
    "quantize_int8",
    "dequantize_int8",
    "bf16_encode",
    "bf16_decode",
]

#: Codec names accepted in the update section of a ``--compress`` spec.
#: ``topk`` takes an inline rate (``topk0.01``); ``rle`` is the lossless
#: path and combines with nothing else.
UPDATE_CODECS = ("int8", "bf16", "topk", "rle")


# ----------------------------------------------------------------------
# varint + run-length primitives (shared by masks and byte diffs)
# ----------------------------------------------------------------------
def _put_varint(buf: bytearray, value: int) -> None:
    """Append one LEB128-encoded non-negative integer."""
    if value < 0:
        raise ValueError(f"varints are non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def _get_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Decode one LEB128 integer at ``pos``; returns ``(value, next_pos)``."""
    value = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def rle_encode_bytes(data: bytes, ref: bytes) -> bytes | None:
    """Byte-level diff of ``data`` against an equal-length ``ref``.

    The encoding is a sequence of ``(equal_len, literal_len, literal
    bytes)`` groups with varint lengths, always starting with an equal run
    (possibly zero-length).  Returns ``None`` when encoding cannot help —
    unequal lengths, too many alternations, or a result no smaller than
    ``data`` — so callers fall back to shipping raw bytes.  Decoding with
    the same ``ref`` is exact: this codec is lossless by construction.
    """
    if len(data) != len(ref) or not data:
        return None
    a = np.frombuffer(data, dtype=np.uint8)
    b = np.frombuffer(ref, dtype=np.uint8)
    eq = a == b
    bounds = np.concatenate(
        ([0], np.flatnonzero(np.diff(eq)) + 1, [a.size])
    )
    # Each literal run costs >= 2 varint bytes of framing; a diff that
    # alternates every few bytes cannot win, so bail before the Python
    # loop below gets expensive.
    if len(bounds) - 1 > max(8, a.size // 8):
        return None
    buf = bytearray()
    pending_eq = 0
    for start, end in zip(bounds[:-1], bounds[1:]):
        if eq[start]:
            pending_eq = int(end - start)
        else:
            _put_varint(buf, pending_eq)
            _put_varint(buf, int(end - start))
            buf += data[start:end]
            pending_eq = 0
        if len(buf) >= len(data):
            return None
    if pending_eq:
        _put_varint(buf, pending_eq)
        _put_varint(buf, 0)
    if len(buf) >= len(data):
        return None
    return bytes(buf)


def rle_decode_bytes(encoded: bytes, ref: bytes) -> bytes:
    """Invert :func:`rle_encode_bytes` against the same reference bytes."""
    out = bytearray()
    pos = 0
    n = len(ref)
    while len(out) < n:
        eq_len, pos = _get_varint(encoded, pos)
        lit_len, pos = _get_varint(encoded, pos)
        if eq_len:
            out += ref[len(out) : len(out) + eq_len]
        if lit_len:
            out += encoded[pos : pos + lit_len]
            pos += lit_len
    if len(out) != n or pos != len(encoded):
        raise ValueError(
            f"corrupt rle stream: decoded {len(out)} of {n} bytes, "
            f"consumed {pos} of {len(encoded)} encoded bytes"
        )
    return bytes(out)


def encode_indices(idx: np.ndarray, n: int) -> bytes:
    """Run-length encode a sorted top-k index set over ``n`` positions.

    Consecutive survivors collapse into ``(gap, run_length)`` varint pairs
    — exactly the structure gradient sparsity produces (hot tensors keep
    contiguous stripes).  The total length ``n`` and count ``k`` lead the
    stream so decoding is self-delimiting.
    """
    idx = np.asarray(idx, dtype=np.int64)
    buf = bytearray()
    _put_varint(buf, n)
    _put_varint(buf, int(idx.size))
    if idx.size:
        breaks = np.flatnonzero(idx[1:] - idx[:-1] != 1)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [idx.size - 1]))
        runs = ends - starts + 1
        gaps = np.empty(starts.size, dtype=np.int64)
        gaps[0] = idx[starts[0]]
        gaps[1:] = idx[starts[1:]] - (idx[ends[:-1]] + 1)
        pairs = np.empty(2 * starts.size, dtype=np.int64)
        pairs[0::2] = gaps
        pairs[1::2] = runs
        if pairs.max() < 0x80:
            # Sparse top-k masks live here: every gap and run fits one
            # varint byte, so the whole stream is one vectorized cast
            # instead of a Python loop per run.
            buf += pairs.astype(np.uint8).tobytes()
        else:
            for value in pairs:
                _put_varint(buf, int(value))
    return bytes(buf)


def decode_indices(encoded: bytes) -> tuple[np.ndarray, int]:
    """Invert :func:`encode_indices`; returns ``(indices, n)``."""
    pos = 0
    n, pos = _get_varint(encoded, pos)
    k, pos = _get_varint(encoded, pos)
    chunks: list[np.ndarray] = []
    cursor = 0
    total = 0
    while total < k:
        gap, pos = _get_varint(encoded, pos)
        run, pos = _get_varint(encoded, pos)
        start = cursor + gap
        chunks.append(np.arange(start, start + run, dtype=np.int64))
        cursor = start + run
        total += run
    idx = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
    if idx.size != k or (idx.size and int(idx[-1]) >= n) or pos != len(encoded):
        raise ValueError("corrupt top-k index stream")
    return idx, n


# ----------------------------------------------------------------------
# quantizers
# ----------------------------------------------------------------------
def quantize_int8(values: np.ndarray) -> tuple[bytes, float]:
    """Symmetric per-tensor int8: ``scale = max|x| / 127``, 1 byte/element.

    Deterministic: ``np.rint`` (round-half-to-even) and a pure-max scale,
    so equal inputs quantize equally on every backend.  An all-zero (or
    empty) tensor has scale 0 and decodes to exact zeros.
    """
    flat = np.ravel(values)
    amax = float(np.max(np.abs(flat))) if flat.size else 0.0
    scale = amax / 127.0
    if scale == 0.0:
        q = np.zeros(flat.shape, dtype=np.int8)
    else:
        q = np.clip(np.rint(flat / scale), -127, 127).astype(np.int8)
    return q.tobytes(), scale


def dequantize_int8(
    data: bytes, scale: float, shape: tuple, dtype: np.dtype
) -> np.ndarray:
    """Invert :func:`quantize_int8`; error is bounded by ``scale / 2``."""
    q = np.frombuffer(data, dtype=np.int8).astype(dtype)
    return np.asarray(q * dtype.type(scale), dtype=dtype).reshape(shape)


def bf16_encode(values: np.ndarray) -> bytes:
    """Truncate to bfloat16 (float32's upper 16 bits), 2 bytes/element."""
    f32 = np.ascontiguousarray(np.ravel(values), dtype=np.float32)
    return (f32.view(np.uint32) >> 16).astype(np.uint16).tobytes()


def bf16_decode(data: bytes, shape: tuple, dtype: np.dtype) -> np.ndarray:
    """Invert :func:`bf16_encode`: values already representable in bf16
    round-trip exactly; everything else lands on its truncated neighbor."""
    u32 = np.frombuffer(data, dtype=np.uint16).astype(np.uint32) << 16
    return u32.view(np.float32).astype(dtype).reshape(shape)


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TransportConfig:
    """Parsed ``--compress`` spec: what each wire direction encodes with.

    Grammar: comma-separated ``scope:value`` sections, e.g.
    ``update:int8+topk0.01,snapshot:rle``.  The update chain combines at
    most one quantizer (``int8`` | ``bf16``) with an optional ``topk<rate>``
    sparsifier; ``rle`` is the lossless update path and combines with
    nothing.  The snapshot section accepts ``rle`` only (always lossless).
    """

    update_quantizer: str | None = None  # "int8" | "bf16" | None
    update_topk: float | None = None  # keep rate in (0, 1]; None = dense
    update_rle: bool = False  # lossless byte-diff update path
    snapshot_rle: bool = False  # delta-segment byte-diff encoding

    def __post_init__(self) -> None:
        if self.update_quantizer not in (None, "int8", "bf16"):
            raise ValueError(
                f"update quantizer must be 'int8' or 'bf16', "
                f"got {self.update_quantizer!r}"
            )
        if self.update_topk is not None and not 0.0 < self.update_topk <= 1.0:
            raise ValueError(
                f"topk rate must lie in (0, 1], got {self.update_topk}"
            )
        if self.update_rle and (
            self.update_quantizer is not None or self.update_topk is not None
        ):
            raise ValueError(
                "the lossless 'rle' update codec combines with nothing; "
                "drop int8/bf16/topk or drop rle"
            )

    @property
    def has_update(self) -> bool:
        return (
            self.update_quantizer is not None
            or self.update_topk is not None
            or self.update_rle
        )

    @property
    def lossless(self) -> bool:
        """Whether every configured path is bit-exact (CONTRACTS.md I11)."""
        return self.update_quantizer is None and self.update_topk is None

    @property
    def spec(self) -> str:
        """Canonical spec string (stable across equivalent inputs)."""
        sections = []
        if self.has_update:
            if self.update_rle:
                chain = ["rle"]
            else:
                chain = []
                if self.update_topk is not None:
                    chain.append(f"topk{self.update_topk:g}")
                if self.update_quantizer is not None:
                    chain.append(self.update_quantizer)
            sections.append("update:" + "+".join(chain))
        if self.snapshot_rle:
            sections.append("snapshot:rle")
        return ",".join(sections)

    @classmethod
    def parse(cls, spec: str) -> "TransportConfig":
        """Parse ``update:<codec>[+<codec>...][,snapshot:rle]``."""
        if not isinstance(spec, str) or not spec.strip():
            raise ValueError(
                "empty compress spec; expected e.g. "
                "'update:int8+topk0.01,snapshot:rle'"
            )
        quantizer: str | None = None
        topk: float | None = None
        update_rle = False
        snapshot_rle = False
        seen: set[str] = set()
        for section in spec.split(","):
            section = section.strip()
            scope, sep, value = section.partition(":")
            scope = scope.strip()
            value = value.strip()
            if not sep or not value:
                raise ValueError(
                    f"malformed compress section {section!r}; expected "
                    "'update:<codecs>' or 'snapshot:rle'"
                )
            if scope in seen:
                raise ValueError(f"duplicate compress section {scope!r}")
            seen.add(scope)
            if scope == "snapshot":
                if value != "rle":
                    raise ValueError(
                        f"snapshot codec must be 'rle', got {value!r}"
                    )
                snapshot_rle = True
            elif scope == "update":
                for codec in value.split("+"):
                    codec = codec.strip()
                    if codec in ("int8", "bf16"):
                        if quantizer is not None:
                            raise ValueError(
                                f"at most one quantizer per update chain; "
                                f"got both {quantizer!r} and {codec!r}"
                            )
                        quantizer = codec
                    elif codec == "rle":
                        update_rle = True
                    elif codec.startswith("topk"):
                        if topk is not None:
                            raise ValueError("duplicate topk codec")
                        try:
                            topk = float(codec[len("topk"):])
                        except ValueError:
                            raise ValueError(
                                f"malformed topk rate in {codec!r}; expected "
                                "e.g. 'topk0.01'"
                            ) from None
                    else:
                        raise ValueError(
                            f"unknown update codec {codec!r}; choose from "
                            f"{UPDATE_CODECS}"
                        )
            else:
                raise ValueError(
                    f"unknown compress scope {scope!r}; expected 'update' "
                    "or 'snapshot'"
                )
        return cls(
            update_quantizer=quantizer,
            update_topk=topk,
            update_rle=update_rle,
            snapshot_rle=snapshot_rle,
        )


# ----------------------------------------------------------------------
# the stateful update codec
# ----------------------------------------------------------------------
class TransportCodec(Stateful):
    """Encodes client→server updates and carries error-feedback state.

    One instance lives on the coordinator and sees every update exactly
    once, in deterministic item order (sync: result order inside
    ``_run_round``; async: result order inside each dispatch wave), so the
    residual stream is a pure function of the run config and seed.

    ``encode_update`` mutates the update in place: ``params``/``state``
    are replaced by their decoded post-codec values (bit-identical for
    lossless codecs), ``bytes_up`` becomes the on-wire byte count while
    ``raw_bytes_up`` keeps the uncompressed size, and — with
    ``wire_time=True`` — the simulated upload leg of ``round_time`` is
    re-priced at the wire size.  The gradient tree is a FedTrans-side
    activeness signal, not part of the paper's model-bytes accounting, and
    passes through untouched.
    """

    schema = schema_tag("TransportCodec")

    def __init__(self, config: TransportConfig):
        self.config = config
        # (client_id, model_id, scope, tensor key) -> residual array.
        # Populated only by lossy codecs; reset on shape change (a model
        # transform re-keys capacity, and a stale residual would be noise).
        self._residuals: dict[tuple[int, str, str, str], np.ndarray] = {}

    # -- Stateful ------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "schema": self.schema,
            "spec": self.config.spec,
            "residuals": [
                {
                    "client_id": cid,
                    "model_id": mid,
                    "scope": scope,
                    "key": key,
                    "value": arr.copy(),
                }
                for (cid, mid, scope, key), arr in sorted(
                    self._residuals.items()
                )
            ],
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        if payload["spec"] != self.config.spec:
            raise ValueError(
                f"checkpoint transport spec {payload['spec']!r} does not "
                f"match the configured {self.config.spec!r}; error-feedback "
                "residuals are codec-specific and cannot be reinterpreted"
            )
        self._residuals = {
            (
                int(e["client_id"]),
                e["model_id"],
                e["scope"],
                e["key"],
            ): np.asarray(e["value"])
            for e in payload["residuals"]
        }

    # -- encoding ------------------------------------------------------
    def encode_update(
        self,
        update,
        reference=None,
        device=None,
        wire_time: bool = False,
    ) -> None:
        """Encode one :class:`~repro.fl.types.ClientUpdate` in place.

        ``reference`` is the dispatch-time server model (or ``None`` when
        it is gone); its parameter tree anchors delta coding.  ``device``
        supplies the bandwidth for the optional ``wire_time`` re-pricing.
        """
        if not self.config.has_update:
            return
        ref_params = dict(reference.params()) if reference is not None else {}
        ref_state = dict(reference.state()) if reference is not None else {}
        wire = 0
        wire += self._encode_tree(
            update.client_id, update.model_id, "param", update.params, ref_params
        )
        wire += self._encode_tree(
            update.client_id, update.model_id, "state", update.state, ref_state
        )
        raw = int(update.raw_bytes_up)
        update.bytes_up = int(wire)
        if wire_time and device is not None:
            # Re-price only the upload leg: download and training stand.
            update.round_time += (wire - raw) / device.bandwidth

    def _encode_tree(
        self,
        client_id: int,
        model_id: str,
        scope: str,
        tree: dict,
        ref_tree: dict,
    ) -> int:
        """Encode one param/state tree in place; returns its wire bytes."""
        cfg = self.config
        wire = 0
        for key in tree:
            arr = np.ascontiguousarray(tree[key])
            ref = ref_tree.get(key)
            if ref is not None and (
                ref.shape != arr.shape or ref.dtype != arr.dtype
            ):
                ref = None
            # Poisoned tensors ship raw so the quarantine NaN scan still
            # fires on exactly the values the client produced.
            if not np.isfinite(arr).all():
                wire += arr.nbytes
                continue
            if cfg.update_rle:
                if ref is not None:
                    packed = rle_encode_bytes(
                        arr.tobytes(), np.ascontiguousarray(ref).tobytes()
                    )
                    wire += len(packed) if packed is not None else arr.nbytes
                else:
                    wire += arr.nbytes
                continue  # lossless: values untouched
            delta = arr - ref if ref is not None else arr.copy()
            rkey = (client_id, model_id, scope, key)
            residual = self._residuals.get(rkey)
            if residual is not None and residual.shape == delta.shape:
                delta = delta + residual
            nbytes, decoded = self._lossy_encode(delta)
            self._residuals[rkey] = delta - decoded
            tree[key] = ref + decoded if ref is not None else decoded
            wire += nbytes
        return wire

    def _lossy_encode(self, delta: np.ndarray) -> tuple[int, np.ndarray]:
        """Top-k + quantize one delta; returns ``(wire_bytes, decoded)``."""
        cfg = self.config
        flat = np.ravel(delta)
        n = flat.size
        wire = 0
        idx: np.ndarray | None = None
        if cfg.update_topk is not None:
            k = max(1, int(np.ceil(cfg.update_topk * n)))
            if k < n:
                # Stable selection: magnitude first, index breaks ties, so
                # every backend keeps the same k coordinates.  Partition
                # finds the k-th magnitude in O(n); usually exactly k
                # elements reach it and one flatnonzero yields them already
                # index-sorted.  Boundary ties (> k candidates) keep the
                # lowest tied indices — exactly the
                # lexsort((index, -magnitude)) selection, much cheaper.
                mag = np.abs(flat)
                kth = np.partition(mag, n - k)[n - k]
                idx = np.flatnonzero(mag >= kth)
                if idx.size > k:
                    gt = mag[idx] > kth
                    keep = k - np.count_nonzero(gt)
                    idx = np.concatenate((idx[gt], idx[~gt][:keep]))
                    idx.sort()
                wire += len(encode_indices(idx, n))
        values = flat[idx] if idx is not None else flat
        if cfg.update_quantizer == "int8":
            # Inline quantize_int8/dequantize_int8 minus the bytes round
            # trip: same clip(rint(x/scale)) int8 grid, identical decoded
            # values, but the wire length is just 1 byte/element + scale.
            # The max-magnitude element always survives top-k, so the
            # selected max equals the overall max — when mag is already
            # paid for, skip a second abs over the survivors.
            if idx is not None:
                amax = float(mag.max()) if n else 0.0
            else:
                amax = float(np.max(np.abs(values))) if n else 0.0
            wire += values.size + 8  # 8: the float64 scale on the wire
            scale = amax / 127.0
            if scale == 0.0:
                decoded_values = np.zeros(values.shape, dtype=values.dtype)
            else:
                q = np.clip(np.rint(values / scale), -127, 127).astype(np.int8)
                decoded_values = q.astype(values.dtype) * values.dtype.type(
                    scale
                )
        elif cfg.update_quantizer == "bf16":
            payload = bf16_encode(values)
            wire += len(payload)
            decoded_values = bf16_decode(payload, values.shape, values.dtype)
        else:
            wire += values.nbytes
            decoded_values = values.copy()
        if idx is not None:
            decoded = np.zeros(n, dtype=flat.dtype)
            decoded[idx] = decoded_values
        else:
            decoded = decoded_values
        return wire, decoded.reshape(delta.shape)
