"""Run registry: config-hashed run directories for durable runs.

A *run* is identified by everything that shapes its trajectory: the
strategy name, the coordinator configuration, and the fleet (client ids,
dataset sizes, device capacities).  :func:`run_hash` fingerprints that
identity; :class:`RunRegistry` maps it to a stable directory
``<root>/<strategy>-<hash>`` so repeated invocations of the same
experiment land their checkpoints in the same place — and a changed
config lands somewhere else instead of corrupting an existing run.

Knobs that do **not** affect the trajectory are excluded from the hash on
purpose: the executor backend and worker count (all backends are
bit-identical by contract), the sanitizer (checks, never changes,
behavior), and the checkpoint/resume knobs themselves — so a run can be
resumed under a different backend, with a different cadence, or with the
sanitizer on, and still find its checkpoints.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from .types import FLClient

__all__ = ["TRAJECTORY_NEUTRAL_KNOBS", "fleet_fingerprint", "run_hash", "RunRegistry"]

# CoordinatorConfig fields excluded from the run identity (see module
# docstring).  Everything else — seed, rounds, trainer, policies, async
# knobs, dtype — changes the trajectory and therefore the run.
TRAJECTORY_NEUTRAL_KNOBS = (
    "checkpoint_every",
    "checkpoint_dir",
    "resume",
    "executor",
    "max_workers",
    "sanitize",
)


def fleet_fingerprint(clients: list[FLClient]) -> list[list]:
    """The fleet facts the trajectory depends on, in registration order."""
    return [
        [
            c.client_id,
            c.data.num_train,
            c.data.num_test,
            float(c.capacity_macs),
        ]
        for c in clients
    ]


def run_hash(strategy_name: str, config, clients: list[FLClient]) -> str:
    """12-hex-digit fingerprint of (strategy, trajectory config, fleet)."""
    cfg = asdict(config)
    for knob in TRAJECTORY_NEUTRAL_KNOBS:
        cfg.pop(knob, None)
    doc = {
        "strategy": strategy_name,
        "config": cfg,
        "fleet": fleet_fingerprint(clients),
    }
    blob = json.dumps(doc, sort_keys=True, default=repr).encode()
    return hashlib.blake2b(blob, digest_size=6).hexdigest()


class RunRegistry:
    """Maps run identities to directories under one registry root."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def run_dir(self, strategy_name: str, config, clients: list[FLClient]) -> Path:
        """The (created) directory owning this run's checkpoints."""
        d = self.root / f"{strategy_name}-{run_hash(strategy_name, config, clients)}"
        d.mkdir(parents=True, exist_ok=True)
        return d

    def runs(self) -> list[str]:
        """Names of every registered run directory, sorted."""
        if not self.root.exists():
            return []
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())
