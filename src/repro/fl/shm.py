"""Shared-memory model snapshots for the process round executor.

The process backend used to publish models as pickle files: every publish
serialized each changed model's tensors into bytes, and every worker
deserialized them back into fresh arrays.  This module replaces the byte
round-trip with ``multiprocessing.shared_memory`` segments:

* the coordinator writes each changed model's parameter/state tensors
  **once** into a segment (raw, aligned, no serialization);
* a small pickled header at the start of the segment carries everything
  that is not bulk float data — the architecture spec
  (:func:`~repro.nn.serialization.model_spec`), per-tensor
  ``(offset, shape, dtype)`` records, and the delta bookkeeping (removed
  ids, the coherent id set);
* workers attach the segment and rebuild each model around **read-only
  views** into the mapped buffer — a delta is a handful of offsets, not
  serialized bytes, and the tensor data is never copied on the worker
  side (training clones the suite model per work item, exactly as
  before, which is where the private writable copy comes from).

Lifecycle: the coordinator owns segments and unlinks them when a snapshot
chain compacts and on ``close()``; a ``weakref.finalize`` backstop unlinks
on interpreter exit if an executor is abandoned without ``close()``
(crash-path hygiene — POSIX shared memory outlives the process
otherwise).  Workers keep attached segments open for as long as installed
models view into them (unlinking only removes the name; existing mappings
stay valid) and drop them wholesale when a full snapshot rebases the
suite.
"""

from __future__ import annotations

import logging
import pickle
import struct
import weakref
from multiprocessing import shared_memory

import numpy as np

from ..nn.model import CellModel
from ..nn.serialization import model_from_spec, model_spec
from .transport import rle_decode_bytes, rle_encode_bytes

__all__ = [
    "WIRE_FORMAT_VERSION",
    "SnapshotFormatError",
    "write_snapshot_segment",
    "read_snapshot_segment",
    "attach_segment",
    "segment_exists",
    "unlink_segments",
    "make_finalizer",
]

_ALIGN = 64

#: Wire-format version of snapshot segments.  Version 1 was the implicit
#: pre-tag layout (a bare 8-byte header length, per-tensor records without
#: an encoding column); version 2 added the magic/version prefix and
#: codec-aware tensor records.  Readers reject anything else up front with
#: a descriptive :class:`SnapshotFormatError` instead of a pickle mismatch.
WIRE_FORMAT_VERSION = 2

_MAGIC = b"RSNP"
# magic, wire-format version, pickled-header length.
_PREFIX = struct.Struct("<4sHQ")


class SnapshotFormatError(RuntimeError):
    """A segment's wire format cannot be decoded by this reader."""


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


# ----------------------------------------------------------------------
# coordinator side: write
# ----------------------------------------------------------------------
def _tensor_items(model: CellModel):
    """Deterministic (scope, key, array) walk: params then state."""
    for key, arr in model.params().items():
        yield "param", key, arr
    for key, arr in model.state().items():
        yield "state", key, arr


def write_snapshot_segment(
    name: str,
    kind: str,
    models: dict[str, CellModel],
    removed: frozenset[str] = frozenset(),
    all_ids: frozenset[str] = frozenset(),
    *,
    rle: bool = False,
    shadow: dict[tuple[str, str, str], bytes] | None = None,
) -> tuple[shared_memory.SharedMemory, int, int]:
    """Create segment ``name`` holding ``models``.

    ``kind`` is ``"full"`` (the complete suite) or ``"delta"`` (changed
    models only, plus the removed ids and the coherent id set for the
    worker-side consistency check).  Returns ``(shm, wire_bytes,
    raw_bytes)`` — both counts cover header + tensor data; they are equal
    unless run-length encoding shrank something.

    ``shadow`` is the coordinator's record of each tensor's bytes as of
    its *previous* publish, keyed ``(model_id, scope, key)``; when given
    it is both consulted (the rle reference) and updated in place (this
    publish becomes the next one's reference).  With ``rle=True`` each
    tensor whose shadow bytes exist is stored as a byte-level run-length
    diff against them when that is smaller — the worker replays the delta
    chain in publish order, so its current tensor bytes are exactly the
    shadow the coordinator diffed against.  Full segments are always
    written raw (they are the rebase anchor for workers with no prior
    state) but still refresh the shadow.
    """
    metas: dict[str, dict] = {}
    blobs: list[tuple[int, bytes]] = []
    offset = 0
    wire_bytes = 0
    raw_bytes = 0
    for mid, model in models.items():
        tensors = []
        for scope, key, arr in _tensor_items(model):
            arr = np.ascontiguousarray(arr)
            raw_data = arr.tobytes()
            data = raw_data
            raw_bytes += arr.nbytes
            enc = "raw"
            if shadow is not None:
                skey = (mid, scope, key)
                if rle:
                    ref = shadow.get(skey)
                    if ref is not None and len(ref) == len(raw_data):
                        packed = rle_encode_bytes(raw_data, ref)
                        if packed is not None:
                            enc = "rle"
                            data = packed
                shadow[skey] = raw_data
            off = _aligned(offset)
            tensors.append(
                (scope, key, off, arr.shape, arr.dtype.str, enc, len(data))
            )
            blobs.append((off, data))
            offset = off + len(data)
            wire_bytes += len(data)
        metas[mid] = {
            "spec": model_spec(model),
            "version": model.version,
            "tensors": tensors,
        }
    header = pickle.dumps(
        {
            "kind": kind,
            "models": metas,
            "removed": tuple(sorted(removed)),
            "all_ids": tuple(sorted(all_ids)),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    payload_start = _aligned(_PREFIX.size + len(header))
    total = max(payload_start + offset, 1)
    shm = shared_memory.SharedMemory(name=name, create=True, size=total)
    buf = shm.buf
    _PREFIX.pack_into(buf, 0, _MAGIC, WIRE_FORMAT_VERSION, len(header))
    buf[_PREFIX.size : _PREFIX.size + len(header)] = header
    for off, data in blobs:
        buf[payload_start + off : payload_start + off + len(data)] = data
    return shm, len(header) + wire_bytes, len(header) + raw_bytes


# ----------------------------------------------------------------------
# worker side: attach + rebuild
# ----------------------------------------------------------------------
def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting cleanup responsibility.

    The coordinator is the sole owner.  Attaching re-registers the name
    with the resource tracker, but the fork-started workers share the
    coordinator's tracker process and its cache is a *set* of names — the
    worker's registration is a no-op and the coordinator's unlink retires
    the single entry.  (Do NOT unregister here: with the shared tracker
    that would remove the coordinator's registration and turn its later
    unlink into tracker noise.)
    """
    return shared_memory.SharedMemory(name=name)


def segment_exists(name: str) -> bool:
    """Whether a segment of this name currently exists (tests, leak checks)."""
    try:
        shm = attach_segment(name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


def _install_views(model: CellModel, views: dict[tuple[str, str], np.ndarray]) -> None:
    """Replace a freshly built model's tensors with shared-memory views.

    Layer parameter/state names equal their attribute names (``w``,
    ``gamma``, ``running_mean``, …) — the substrate-wide convention — so
    installation is a generic setattr walk.  Gradient buffers keep their
    construction-time private arrays (same shapes).
    """
    for cell in model.cells:
        for lname, layer in cell._named_layers():
            for pname in list(layer.params()):
                setattr(layer, pname, views[("param", f"{cell.cell_id}/{lname}.{pname}")])
            for sname in list(layer.state()):
                setattr(layer, sname, views[("state", f"{cell.cell_id}/{lname}.{sname}")])


def read_snapshot_segment(
    shm: shared_memory.SharedMemory,
    prev_models: dict[str, CellModel] | None = None,
) -> tuple[str, dict[str, CellModel], frozenset[str], frozenset[str]]:
    """Decode a segment into ``(kind, models, removed, all_ids)``.

    Each raw tensor is installed as a read-only view into the mapped
    buffer — zero-copy: the only per-tensor cost is the ndarray wrapper.
    Run-length-encoded tensors (delta segments written with snapshot
    compression) are decoded against ``prev_models`` — the worker's
    current suite state, whose tensor bytes match what the coordinator
    diffed against — into private read-only arrays.  Callers must keep
    ``shm`` open for as long as any returned model views into it.
    """
    buf = shm.buf
    if len(buf) < _PREFIX.size:
        raise SnapshotFormatError(
            f"segment too small ({len(buf)} bytes) to hold a snapshot prefix"
        )
    magic, version, hlen = _PREFIX.unpack_from(buf, 0)
    if magic != _MAGIC:
        raise SnapshotFormatError(
            f"segment does not start with the {_MAGIC!r} snapshot magic "
            f"(got {bytes(magic)!r}); this is either not a snapshot segment "
            "or one written by a pre-versioned (wire format 1) build"
        )
    if version != WIRE_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"segment has wire-format version {version}, this reader "
            f"understands only version {WIRE_FORMAT_VERSION}"
        )
    header = pickle.loads(bytes(buf[_PREFIX.size : _PREFIX.size + hlen]))
    payload_start = _aligned(_PREFIX.size + hlen)
    models: dict[str, CellModel] = {}
    for mid, meta in header["models"].items():
        model = model_from_spec(meta["spec"])
        prev_tensors: dict[tuple[str, str], np.ndarray] | None = None
        views: dict[tuple[str, str], np.ndarray] = {}
        for scope, key, off, shape, dtype_str, enc, length in meta["tensors"]:
            dtype = np.dtype(dtype_str)
            if enc == "raw":
                view = np.ndarray(
                    shape, dtype=dtype, buffer=buf, offset=payload_start + off
                )
                view.flags.writeable = False
            elif enc == "rle":
                if prev_tensors is None:
                    if prev_models is None or mid not in prev_models:
                        raise SnapshotFormatError(
                            f"delta segment stores {mid!r}/{key} run-length "
                            "encoded but no previous model state is available "
                            "to decode it against"
                        )
                    prev_tensors = {
                        (s, k): a for s, k, a in _tensor_items(prev_models[mid])
                    }
                ref = prev_tensors.get((scope, key))
                if ref is None or ref.shape != tuple(shape) or ref.dtype != dtype:
                    raise SnapshotFormatError(
                        f"previous state for {mid!r}/{key} does not match the "
                        "run-length-encoded tensor's shape/dtype"
                    )
                encoded = bytes(
                    buf[payload_start + off : payload_start + off + length]
                )
                decoded = rle_decode_bytes(
                    encoded, np.ascontiguousarray(ref).tobytes()
                )
                view = np.frombuffer(decoded, dtype=dtype).reshape(shape)
            else:
                raise SnapshotFormatError(
                    f"unknown tensor encoding {enc!r} for {mid!r}/{key}"
                )
            views[(scope, key)] = view
        _install_views(model, views)
        # A replica of server state: answer version-keyed lookups like the
        # original (clone(keep_id=True) semantics).
        model.sync_version(meta["version"])
        models[mid] = model
    return (
        header["kind"],
        models,
        frozenset(header["removed"]),
        frozenset(header["all_ids"]),
    )


# ----------------------------------------------------------------------
# coordinator side: cleanup
# ----------------------------------------------------------------------
_LOG = logging.getLogger(__name__)

#: Segment-cleanup failures observed since import (close errors + unlink
#: errors, including the already-unlinked FileNotFoundError no-ops).  A
#: meter, not a guard: tests and long-lived coordinators can watch it move.
cleanup_failures = 0


def unlink_segments(segments: dict[str, shared_memory.SharedMemory]) -> None:
    """Close and unlink every owned segment; idempotent on repeat calls.

    Also the ``weakref.finalize`` target: it receives the executor's live
    segment registry (a plain dict, so the finalizer holds no reference to
    the executor itself) and empties it.

    Failure handling (this used to be two bare ``except Exception: pass``
    blocks — the seed violation repro-lint RL009 is written against):
    ``close()`` errors and already-gone segments (``FileNotFoundError``
    from ``unlink``) are logged and metered but non-fatal — every segment
    still gets its unlink attempt, and double-unlinking is the idempotent
    path the finalizer backstop relies on.  Any *other* unlink failure
    means a kernel object may genuinely outlive the process, so after all
    segments have been attempted those errors re-raise as one
    ``RuntimeError`` naming every leaked segment — the final unlink is the
    backstop, and a silent failure there is a resource leak.
    """
    global cleanup_failures
    leaked: list[tuple[str, BaseException]] = []
    for name, shm in list(segments.items()):
        try:
            shm.close()
        except OSError as err:
            cleanup_failures += 1
            _LOG.warning("closing shm segment %r failed: %s", name, err)
        try:
            shm.unlink()
        except FileNotFoundError:
            # Already unlinked (repeat call, finalizer after close(), or an
            # external cleaner): the desired end state, not a leak.
            cleanup_failures += 1
        except OSError as err:
            cleanup_failures += 1
            _LOG.error("unlinking shm segment %r failed: %s", name, err)
            leaked.append((name, err))
    segments.clear()
    if leaked:
        names = ", ".join(repr(n) for n, _ in leaked)
        raise RuntimeError(
            f"failed to unlink shared-memory segment(s) {names}; the kernel "
            "objects may outlive this process"
        ) from leaked[0][1]


def make_finalizer(owner, segments: dict[str, shared_memory.SharedMemory]):
    """Crash-path backstop: unlink owned segments when ``owner`` dies."""
    return weakref.finalize(owner, unlink_segments, segments)
