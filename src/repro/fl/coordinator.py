"""The FL coordinator: round loop, cost accounting, and evaluation.

Drives any :class:`~repro.fl.strategy.Strategy` through the synchronous FL
lifecycle of §1: select participants, ship models, run local training,
collect updates, aggregate, and periodically evaluate every registered
client on its deployed model.  All costs the paper reports — training MACs,
network volume, server storage, round completion times — are metered here
so every method is measured identically.

Execution backends
------------------
Local training and evaluation are dispatched through a pluggable
:class:`~repro.fl.executor.RoundExecutor` selected by
``CoordinatorConfig.executor``:

* ``"serial"`` (default) — one in-process loop.
* ``"thread"`` — a thread pool; NumPy's BLAS kernels release the GIL, so
  clients' matmul-heavy local steps overlap.
* ``"process"`` — a persistent process pool; the fleet ships to workers
  once, each round's models once (a shared read-only snapshot), and work
  items carry only ``(model_id, client_id, seed material)``.

**Determinism guarantee:** every work item's RNG derives from
``np.random.SeedSequence(seed, spawn_key=(round, client, sub))`` and
results are consumed in submission order, so the three backends produce
bit-identical :class:`~repro.fl.types.TrainingLog` records for the same
seed.  Wall-clock differs; the *simulated* round times (device-model
latency) do not.

Round modes
-----------
``CoordinatorConfig.mode`` selects the round engine:

* ``"sync"`` (default) — the barrier loop above; ``round_time`` is the max
  over participants of download + train + upload (the straggler defines
  the round, paper Table 6).
* ``"async"`` — the buffered-asynchronous engine
  (:mod:`~repro.fl.async_engine`): ``clients_per_round`` clients stay in
  flight on a simulated event clock, aggregation fires on the first
  ``buffer_k`` arrivals with a staleness discount, and arrivals past
  ``deadline_s`` are dropped (their wasted cost metered).  Each
  :class:`RoundRecord` is one aggregation step and ``round_time`` is the
  simulated-clock advance since the previous step — ``sum(round_time)`` is
  total simulated time in both modes.  The same determinism guarantee
  holds: async runs are bit-reproducible for a fixed seed on every
  executor backend.

Evaluation is batched by deployment: clients sharing an ensemble (see
:meth:`Strategy.eval_ensemble`) are forward-passed together in a few large
vectorized calls instead of per-client loops.  Strategies that override
``client_logits`` keep their bespoke per-client path.

Incremental evaluation cache
----------------------------
Periodic evaluation sweeps the *whole* registered fleet, yet between
sweeps most of the suite is untouched (async aggregation updates at most
``buffer_k`` models per step; cold models in multi-model training go
unchanged for long stretches).  With ``eval_cache`` on (the default) the
coordinator keys two caches on the models' monotone
:attr:`~repro.nn.model.CellModel.version` counters:

* **accuracies** per ``(ensemble ids, ensemble versions, client chunk)`` —
  a deployment group whose models did not change since the last sweep
  skips its forward passes entirely;
* **logits** per ``(model id, model version, client chunk)``, kept for
  multi-member ensembles only — across sweeps, an ensemble that lost some
  (not all) members to training recomputes only the changed members and
  reuses the idle members' logits (SplitMix's nested deployments, where
  the hot base net invalidates every ensemble containing it but the cold
  members' passes are saved).  Within a single sweep there is nothing to
  share: deployment groups partition the fleet, so no two groups ever
  produce the same ``(model, version, chunk)`` key.  Single-member groups
  skip the logits cache entirely (an unchanged member is an accuracy-cache
  hit and a changed one needs a full recompute, so a stored entry could
  never be read): they dispatch as plain accuracy tasks — per-client
  accuracies over the wire, nothing retained — submitted in the *same*
  executor wave as the ensembles' member-logits tasks
  (:meth:`~repro.fl.executor.RoundExecutor.eval_and_logits_round`), so a
  mixed sweep pays one barrier, not two.

The retained logits are float64 (a downcast would break the bit-identity
contract), so the cross-sweep cache costs
``O(multi-member-ensemble test rows x num_classes)`` doubles of resident
memory between sweeps — the price of skipping idle members' forward
passes.  Fleets whose evaluation is dominated by single-model deployments
pay nothing; ensemble fleets that cannot afford the residency can set
``eval_cache=False`` and trade the saving back for memory.

Cache-on and cache-off sweeps are bit-identical: the cached quantities are
re-derived by exactly the arithmetic of the uncached
:func:`~repro.fl.executor._eval_task` path, and entries are invalidated by
version, never by heuristics.  ``EvalRecord.cached_clients`` /
``evaluated_clients`` meter the split so the saving is observable.  Both
caches evict entries untouched by the latest sweep, bounding memory at one
sweep's working set.

Scheduling subsystem
--------------------
Who participates, when aggregation fires, and what happens to predicted
stragglers are pluggable policies (:mod:`~repro.fl.scheduling`), selected
by name through ``CoordinatorConfig.selector`` / ``pacing`` /
``straggler``.  Policy resolution order:

1. CLI flags (``--selector`` / ``--pacing`` / ``--straggler`` /
   ``--evict-after``) override…
2. the ``CoordinatorConfig`` fields (defaults: ``uniform`` / ``static`` /
   ``drop``), which the coordinator resolves through…
3. the scheduling registries (:func:`~repro.fl.scheduling.make_selector`
   etc.) at construction time, handing each policy the run seed, the
   resolved ``buffer_k``/``deadline_s``, and the fleet; after which…
4. each policy's own defaults (availability rate, quantile level, …)
   apply.

The selector runs in both modes; pacing and straggler policies are
consulted by the async engine per dispatch wave (sync mode rejects
non-default values, as it already did for the raw async knobs).  The
default stack reproduces the pre-subsystem behavior bit-for-bit; every
round's decisions are exported on ``RoundRecord.scheduler`` (effective
``buffer_k``, active deadline quantiles, downsized/dropped/evicted
counts).  Strategy-side eviction state (FedTrans's sparse utility store)
reaches the record through :meth:`Strategy.scheduler_counters`.

Note: ``convergence_patience`` is measured in *evaluations* (one every
``eval_every`` rounds), not in rounds — patience 10 with ``eval_every=10``
spans 100 training rounds.

Durable runs
------------
With ``checkpoint_dir`` set the run lives in a registry directory keyed by
its config hash (:mod:`~repro.fl.registry`); ``checkpoint_every`` writes a
crash-consistent checkpoint (:mod:`~repro.fl.checkpoint`) at the end of
every N-th round, and ``resume=True`` picks the run back up from the last
good checkpoint there.  The coordinator is itself :class:`~repro.stateful.
Stateful`: its payload composes the strategy, the selector, the async
engine (pending work included — checkpoints land at wave-drain barriers),
the round RNG, the model-id counter, and both evaluation caches, so a
resumed run is bit-identical to the uninterrupted one (CONTRACTS.md I9).
Executor state is deliberately *absent* from the payload (executors carry
derived runtime state only), which is what lets a run checkpointed under
one backend resume under another.
"""

from __future__ import annotations

import inspect
import os
from dataclasses import dataclass

import numpy as np

from ..analysis import sanitize as _sanitize
from ..nn.compute import COMPUTE_DTYPES, set_compute_dtype
from ..nn.losses import accuracy
from ..nn.cells import cell_id_counter, set_cell_id_counter
from ..nn.model import model_id_counter, set_model_id_counter
from ..stateful import Stateful, check_schema, schema_tag
from .async_engine import BufferedAsyncEngine
from .checkpoint import CheckpointWriter, load_checkpoint
from .client import LocalTrainerConfig
from .executor import (
    EvalTask,
    RoundExecutor,
    TrainItem,
    ensemble_accuracies,
    make_executor,
)
from .export import log_from_state, log_state_dict
from .faults import (
    FaultConfig,
    ItemFailure,
    QuarantineConfig,
    RetryPolicy,
    UpdateValidator,
)
from .registry import RunRegistry, run_hash
from .scheduling import (
    PACING_POLICIES,
    SELECTOR_POLICIES,
    STRAGGLER_POLICIES,
    FleetStore,
    make_selector,
    parse_availability,
)
from .strategy import Strategy
from .transport import TransportCodec, TransportConfig
from .types import (
    EvalRecord,
    FaultRecord,
    FLClient,
    RoundRecord,
    SchedulerRecord,
    TrainingLog,
)

__all__ = ["CoordinatorConfig", "Coordinator"]


@dataclass(frozen=True)
class CoordinatorConfig:
    """Run-level configuration (paper §5.1 / Table 7 analogues)."""

    rounds: int = 100
    clients_per_round: int = 10
    trainer: LocalTrainerConfig = LocalTrainerConfig()
    eval_every: int = 10
    seed: int = 0
    # Paper stop rule: "training is considered complete when either the
    # maximum number of training rounds is reached or the validation
    # accuracy converges, [defined as] not improving by more than 1% over
    # 10 consecutive rounds".  Our unit is *evaluations* (one every
    # ``eval_every`` rounds), not rounds.
    convergence_patience: int = 10
    convergence_delta: float = 0.01
    eval_batch_size: int = 256
    # Clients per batched-evaluation task.  Caps the concatenated test-set
    # size (memory stays O(chunk), not O(fleet)) and keeps several tasks in
    # flight for parallel backends even when every client shares one
    # deployment.  Chunk boundaries are deterministic (registration order),
    # so results stay bit-identical across backends.
    eval_group_clients: int = 64
    # Incremental evaluation cache (see module docstring).  Bit-identical
    # on or off; off recomputes every deployment group every sweep.
    eval_cache: bool = True
    # Runtime sanitizer (repro.analysis.sanitize; also enabled by the
    # REPRO_SANITIZE=1 environment variable or the --sanitize CLI flag):
    # published models are frozen read-only while rounds are in flight and
    # model versions are cross-checked against content fingerprints at
    # cache-read and snapshot-publish time.  Checks are dtype-independent,
    # so float32 + sanitize is valid — but the engine's bit-identity
    # claims (golden fixtures) are stated at float64, so a float32
    # sanitized run validates the invariants without asserting the
    # float64 golden digests.  Requires eval_cache=True: the missed-bump
    # cross-check rides the version-keyed cache-read path, and with the
    # cache off there is no version-trusting read for it to protect.
    sanitize: bool = False
    # Round-execution backend: "serial" | "thread" | "process" (see module
    # docstring).  All three are bit-identical for the same seed.
    executor: str = "serial"
    max_workers: int | None = None
    # Compute dtype of the run: "float32" | "float64" | None (inherit the
    # process-wide setting — float64 unless changed; see repro.nn.compute).
    # float64 is the bit-identity dtype every golden fixture is stated at;
    # float32 halves bandwidth and roughly doubles BLAS throughput.
    # Applied process-wide at coordinator construction and shipped to
    # process-pool workers; models and data must be built under the same
    # setting.
    compute_dtype: str | None = None
    # Round engine: "sync" (barrier) or "async" (buffered-asynchronous; see
    # module docstring).  The async knobs below are rejected in sync mode so
    # a silently ignored straggler policy can't masquerade as measured.
    mode: str = "sync"
    # Async: aggregate on this many arrivals (default clients_per_round // 2
    # — the in-flight pool over-selects relative to the buffer).
    buffer_k: int | None = None
    # Async: clients kept concurrently in flight (default clients_per_round).
    async_concurrency: int | None = None
    # Async: drop arrivals whose simulated duration exceeds this many
    # seconds after dispatch (None disables the straggler-drop policy).
    deadline_s: float | None = None
    # Async: per-step staleness discount base in (0, 1]; an update that
    # missed s aggregations contributes with weight discount**s (1 disables).
    staleness_discount: float = 0.5
    # Scheduling policies (see module docstring / repro.fl.scheduling).
    # The selector applies in both modes; pacing and straggler policies are
    # async-only, and non-default values are rejected in sync mode for the
    # same reason the raw async knobs are.
    selector: str = "uniform"
    pacing: str = "static"
    straggler: str = "drop"
    # Availability churn model for the "availability" selector: a spec like
    # "diurnal:base=0.8,amplitude=0.5" or "trace:<path.json>" (see
    # repro.fl.scheduling.availability).  None keeps the selector's flat
    # Bernoulli rate.  Trajectory-affecting (changes who is online when).
    availability_trace: str | None = None
    # Reset the fleet store's per-client utility state (Oort's EMA column)
    # for clients unseen this many rounds; None disables.  Bounds selector
    # state at O(active) over unbounded churn; evicted clients re-enter at
    # the optimistic prior, so default runs (None) are untouched.
    evict_after: int | None = None
    # Fault tolerance (repro.fl.faults).  ``faults`` is a deterministic
    # injection spec ("crash=0.05,poison=0.2,..."; None disables);
    # ``retries`` caps attempts per work item (None = RetryPolicy's
    # default of 3 when faults are configured, no retry layer otherwise).
    # ``quarantine`` screens every update before aggregation (NaN/Inf scan
    # + norm-outlier gate at ``quarantine_norm_mult`` x the running mean
    # norm); rejects divert to the quarantine ledger instead of Eq. 5.
    faults: str | None = None
    retries: int | None = None
    quarantine: bool = False
    quarantine_norm_mult: float = 8.0
    # Transport codec (repro.fl.transport): a spec like
    # "update:int8+topk0.01,snapshot:rle" compresses client→server updates
    # and/or server→worker snapshot segments; None disables.  Lossless
    # specs (rle-only) leave the trajectory bit-identical; lossy codecs
    # (int8/bf16/topk) change it and must be declared here — they are
    # banned from golden-pinned defaults (CONTRACTS.md I11).  Both knobs
    # are trajectory-affecting and therefore part of the run hash.
    compress: str | None = None
    # Re-price each update's simulated upload leg at its on-wire size, so
    # compression shows up in round_time (and in async event ordering) —
    # the bandwidth cost model turning fewer bytes into faster rounds.
    # Off by default: lossless codecs then keep round_time untouched.
    wire_time: bool = False
    # Durable runs (module docstring).  ``checkpoint_dir`` is the registry
    # root — the run's own directory inside it is derived from the config
    # hash, so distinct experiments never clobber each other.  All three
    # knobs are trajectory-neutral: they are excluded from the run hash and
    # never change what the run computes.
    checkpoint_every: int | None = None
    checkpoint_dir: str | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.eval_every < 1:
            raise ValueError("eval_every must be >= 1")
        if self.clients_per_round < 1:
            raise ValueError("clients_per_round must be >= 1")
        if self.convergence_patience < 1:
            raise ValueError("convergence_patience must be >= 1")
        if self.eval_batch_size < 1:
            raise ValueError("eval_batch_size must be >= 1")
        if self.eval_group_clients < 1:
            raise ValueError("eval_group_clients must be >= 1")
        if not isinstance(self.eval_cache, bool):
            raise ValueError(f"eval_cache must be a bool, got {self.eval_cache!r}")
        if not isinstance(self.sanitize, bool):
            raise ValueError(f"sanitize must be a bool, got {self.sanitize!r}")
        if self.sanitize and not self.eval_cache:
            raise ValueError(
                "sanitize=True requires eval_cache=True: the missed-bump "
                "cross-check runs at the version-keyed cache-read path, so "
                "with the cache off the sanitizer cannot check what it "
                "promises to check"
            )
        if self.compute_dtype is not None and self.compute_dtype not in COMPUTE_DTYPES:
            raise ValueError(
                f"compute_dtype must be one of {COMPUTE_DTYPES} or None "
                f"(inherit), got {self.compute_dtype!r}"
            )
        if self.mode not in ("sync", "async"):
            raise ValueError(f"mode must be 'sync' or 'async', got {self.mode!r}")
        # Policy names validate before the mode cross-checks so a typo in a
        # sync config reads as "unknown policy", not "requires async".
        if self.selector not in SELECTOR_POLICIES:
            raise ValueError(
                f"selector must be one of {SELECTOR_POLICIES}, got {self.selector!r}"
            )
        if self.pacing not in PACING_POLICIES:
            raise ValueError(
                f"pacing must be one of {PACING_POLICIES}, got {self.pacing!r}"
            )
        if self.straggler not in STRAGGLER_POLICIES:
            raise ValueError(
                f"straggler must be one of {STRAGGLER_POLICIES}, got {self.straggler!r}"
            )
        if self.availability_trace is not None:
            if self.selector != "availability":
                raise ValueError(
                    "availability_trace requires selector='availability' "
                    f"(got selector={self.selector!r})"
                )
            parse_availability(self.availability_trace)  # raises on a bad spec
        if self.evict_after is not None and self.evict_after < 1:
            raise ValueError("evict_after must be >= 1 (None disables eviction)")
        if self.mode == "sync":
            for knob in ("buffer_k", "async_concurrency", "deadline_s"):
                if getattr(self, knob) is not None:
                    raise ValueError(f"{knob} requires mode='async'")
            for knob, default in (("pacing", "static"), ("straggler", "drop")):
                if getattr(self, knob) != default:
                    raise ValueError(f"{knob}={getattr(self, knob)!r} requires mode='async'")
        if self.buffer_k is not None and self.buffer_k < 1:
            raise ValueError("buffer_k must be >= 1")
        if self.async_concurrency is not None and self.async_concurrency < 1:
            raise ValueError("async_concurrency must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if not 0.0 < self.staleness_discount <= 1.0:
            raise ValueError("staleness_discount must lie in (0, 1]")
        if self.faults is not None:
            FaultConfig.parse(self.faults)  # raises ValueError on a bad spec
        if self.retries is not None and self.retries < 1:
            raise ValueError(f"retries must be >= 1, got {self.retries}")
        if not isinstance(self.quarantine, bool):
            raise ValueError(f"quarantine must be a bool, got {self.quarantine!r}")
        # Delegates range checking (>= 0; 0 disables the norm gate).
        QuarantineConfig(norm_multiplier=self.quarantine_norm_mult)
        if self.compress is not None:
            TransportConfig.parse(self.compress)  # raises ValueError on a bad spec
        if not isinstance(self.wire_time, bool):
            raise ValueError(f"wire_time must be a bool, got {self.wire_time!r}")
        if self.wire_time and (
            self.compress is None
            or not TransportConfig.parse(self.compress).has_update
        ):
            raise ValueError(
                "wire_time=True requires a compress spec with an update "
                "section (there is no wire size to re-price otherwise)"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if not isinstance(self.resume, bool):
            raise ValueError(f"resume must be a bool, got {self.resume!r}")
        if self.checkpoint_every is not None and self.checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")


class Coordinator(Stateful):
    """FL simulation loop — synchronous barrier or buffered-async rounds."""

    schema = schema_tag("Coordinator")

    def __init__(
        self,
        strategy: Strategy,
        clients: list[FLClient],
        config: CoordinatorConfig,
        executor: RoundExecutor | None = None,
    ):
        if not clients:
            raise ValueError("cannot run FL with zero clients")
        # Resolve the run's compute dtype before anything hot is built
        # (None = inherit).  The process executor reads the resolved value
        # when its pool starts, so workers always match the coordinator.
        set_compute_dtype(config.compute_dtype)
        if config.sanitize:
            # Enable-only: sanitize=False must not switch off a sanitizer
            # turned on via REPRO_SANITIZE=1.  The env var is set too so
            # spawn-started pool workers (which re-read the environment)
            # inherit the setting; fork workers inherit the module flag.
            _sanitize.set_sanitizer(True)
            os.environ["REPRO_SANITIZE"] = "1"
        self.strategy = strategy
        self.clients = clients
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        # Fault-tolerance wiring: a retry policy exists whenever faults are
        # injected (so chaos runs recover by default) or when the user asks
        # for one explicitly — real environments fail without a fault spec.
        fault_config = FaultConfig.parse(config.faults) if config.faults else None
        retry = (
            RetryPolicy(max_attempts=config.retries)
            if config.retries is not None
            else (RetryPolicy() if fault_config is not None else None)
        )
        # Transport codec: the update half lives here (one codec instance
        # sees every update in deterministic order — its error-feedback
        # residuals are run state); the snapshot half ships to the executor
        # as config.  An injected executor keeps its own transport setting.
        self._transport_config = (
            TransportConfig.parse(config.compress) if config.compress else None
        )
        self.transport = (
            TransportCodec(self._transport_config)
            if self._transport_config is not None
            else None
        )
        # Last-seen executor publish counters (raw, wire): per-round and
        # per-eval deltas split snapshot bytes for the transport ledger.
        self._pub_seen = (0, 0)
        # An injected executor is caller-owned (and caller-closed); a
        # config-built one belongs to this coordinator.
        self._owns_executor = executor is None
        self.executor = executor or make_executor(
            config.executor, clients, config.trainer, config.seed, config.max_workers,
            faults=fault_config, retry=retry, transport=self._transport_config,
        )
        self.validator = (
            UpdateValidator(
                QuarantineConfig(norm_multiplier=config.quarantine_norm_mult)
            )
            if config.quarantine
            else None
        )
        # Columnar fleet store: one instance backs selection views, the
        # selectors' per-client state, the straggler prescreen, and quantile
        # pacing windows in both modes (the async engine shares it).
        self.fleet = FleetStore(clients, evict_after=config.evict_after)
        self.selector = make_selector(
            config.selector,
            seed=config.seed,
            availability_trace=config.availability_trace,
        )
        self.selector.bind_fleet(self.fleet)
        self._async_engine = (
            BufferedAsyncEngine(
                strategy, clients, config, self.executor, self._rng, self.selector,
                validator=self.validator, transport=self.transport,
                fleet=self.fleet,
            )
            if config.mode == "async"
            else None
        )
        # Bespoke-evaluation detection, hoisted from evaluate(): whether the
        # strategy overrides client_logits, and (for legacy 2-arg overrides)
        # whether that override accepts the resolved model_id.  Re-running
        # inspect.signature on every sweep was pure waste — the strategy
        # class never changes mid-run.
        self._bespoke_logits = type(strategy).client_logits is not Strategy.client_logits
        if self._bespoke_logits:
            params = inspect.signature(strategy.client_logits).parameters
            self._logits_takes_model_id = "model_id" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
            )
        else:
            self._logits_takes_model_id = False
        # Incremental evaluation caches (module docstring): accuracies per
        # (ensemble ids, ensemble versions, chunk); logits per (model id,
        # model version, chunk).  Both evict to the latest sweep's keys.
        self._eval_acc_cache: dict[tuple, np.ndarray] = {}
        self._eval_logits_cache: dict[tuple, np.ndarray] = {}
        # Sanitizer cross-check at the cache-read boundary (no-op unless
        # the sanitizer is on): both caches trust model.version, so a
        # model whose bytes moved without a bump must raise here rather
        # than silently serve a stale entry.
        self._version_watch = _sanitize.VersionWatch()

    def close(self) -> None:
        """Release executor resources (pools recreate lazily if reused)."""
        if self._owns_executor:
            self.executor.close()

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything the round loop's trajectory depends on.

        Executor state is deliberately absent (executors are Stateful with
        empty payloads — pools and snapshot chains are derived), so a
        checkpoint taken under one backend resumes under any other.  In
        async mode the engine payload includes pending work: checkpoints
        are only ever taken between ``step()`` calls, a wave-drain barrier
        where per-step accumulators are known-zero.
        """
        engine = self._async_engine
        return {
            "schema": self.schema,
            # PCG64's state is a plain dict of JSON scalars (Python ints
            # are arbitrary-precision, so the 128-bit words survive JSON).
            "rng": self._rng.bit_generator.state,
            # Both process-global id counters travel: models and cells
            # minted after a resume (growth, deepen transforms) must get
            # the same ids an uninterrupted run would mint.
            "model_id_counter": model_id_counter(),
            "cell_id_counter": cell_id_counter(),
            # Fleet columns (activity stamps, utility EMA, round-time
            # windows) precede the selector: a bound selector's payload is
            # a projection of these columns, so the columns must be
            # restored first on load.
            "fleet": self.fleet.state_dict(),
            "selector": self.selector.state_dict(),
            "strategy": self.strategy.state_dict(),
            "engine": engine.state_dict() if engine is not None else None,
            # Quarantine gate state (running per-model norm estimates): a
            # resumed run must gate exactly like the uninterrupted one.
            "validator": (
                self.validator.state_dict() if self.validator is not None else None
            ),
            # Transport codec state (error-feedback residuals): lossy
            # compressed runs must resume with the exact residual stream
            # the uninterrupted run would carry (CONTRACTS.md I9/I11).
            "transport": (
                self.transport.state_dict() if self.transport is not None else None
            ),
            # The eval caches must travel or a resumed sweep would recompute
            # groups the uninterrupted run served from cache, skewing the
            # cached/evaluated meters on the next EvalRecord.  Tuple keys
            # become list-of-entry dicts (payload convention: str keys
            # only); sorted so the payload is order-independent.
            "eval_acc_cache": [
                {
                    "model_ids": list(mids),
                    "versions": list(vers),
                    "client_ids": list(cids),
                    "accs": accs.copy(),
                }
                for (mids, vers, cids), accs in sorted(self._eval_acc_cache.items())
            ],
            "eval_logits_cache": [
                {
                    "model_id": mid,
                    "version": ver,
                    "client_ids": list(cids),
                    "logits": logits.copy(),
                }
                for (mid, ver, cids), logits in sorted(
                    self._eval_logits_cache.items()
                )
            ],
        }

    def load_state_dict(self, payload: dict) -> None:
        check_schema(payload, self.schema)
        # Strategy first: it may rebuild models (FedTrans's suite grows
        # mid-run), and the counter restamp below must land after every
        # model exists again.  Restoring a model never consumes the
        # counter (model_from_spec takes explicit ids), so the restored
        # position is exactly the checkpointed one.
        self.strategy.load_state_dict(payload["strategy"])
        set_model_id_counter(int(payload["model_id_counter"]))
        set_cell_id_counter(int(payload["cell_id_counter"]))
        self._rng.bit_generator.state = payload["rng"]
        # .get(): checkpoints written before the columnar fleet store carry
        # no entry; the freshly constructed columns are then correct (the
        # selector payload below rehydrates any utility state).
        fleet_payload = payload.get("fleet")
        if fleet_payload is not None:
            self.fleet.load_state_dict(fleet_payload)
        self.selector.load_state_dict(payload["selector"])
        engine_payload = payload["engine"]
        if (engine_payload is None) != (self._async_engine is None):
            raise ValueError(
                "checkpoint mode mismatch: payload "
                f"{'lacks' if engine_payload is None else 'carries'} async-"
                f"engine state but the coordinator mode is {self.config.mode!r}"
            )
        if self._async_engine is not None:
            self._async_engine.load_state_dict(engine_payload)
        # .get(): checkpoints written before the quarantine gate existed
        # carry no validator entry; a validator-less resume of one is fine.
        validator_payload = payload.get("validator")
        if self.validator is not None and validator_payload is not None:
            self.validator.load_state_dict(validator_payload)
        # .get(): checkpoints from before the transport codec carry no
        # entry; an uncompressed resume of one is fine.
        transport_payload = payload.get("transport")
        if self.transport is not None and transport_payload is not None:
            self.transport.load_state_dict(transport_payload)
        self._eval_acc_cache = {
            (
                tuple(e["model_ids"]),
                tuple(int(v) for v in e["versions"]),
                tuple(int(c) for c in e["client_ids"]),
            ): np.asarray(e["accs"], dtype=float)
            for e in payload["eval_acc_cache"]
        }
        self._eval_logits_cache = {
            (
                e["model_id"],
                int(e["version"]),
                tuple(int(c) for c in e["client_ids"]),
            ): np.asarray(e["logits"])
            for e in payload["eval_logits_cache"]
        }

    def _checkpoint_payload(self, log: TrainingLog, next_round: int) -> dict:
        return {
            "schema": schema_tag("RunCheckpoint"),
            "next_round": next_round,
            "coordinator": self.state_dict(),
            "log": log_state_dict(log),
        }

    # ------------------------------------------------------------------
    def run(self) -> TrainingLog:
        """Execute the configured number of rounds (or stop at convergence).

        With ``checkpoint_dir`` set the run writes crash-consistent
        checkpoints into its registry directory (every ``checkpoint_every``
        rounds, plus a final ``completed`` one); with ``resume=True`` it
        first loads the last good checkpoint there and continues from the
        next round — or returns the finished log immediately if the run
        already completed, which makes resume idempotent under kill loops.
        """
        cfg = self.config
        log = TrainingLog(
            strategy=self.strategy.name,
            mode=cfg.mode,
            compress=(
                self._transport_config.spec
                if self._transport_config is not None
                else None
            ),
        )
        acc_history: list[float] = []
        start_round = 0
        writer: CheckpointWriter | None = None
        if cfg.checkpoint_dir is not None:
            run_dir = RunRegistry(cfg.checkpoint_dir).run_dir(
                self.strategy.name, cfg, self.clients
            )
            rhash = run_hash(self.strategy.name, cfg, self.clients)
            writer = CheckpointWriter(run_dir, rhash)
            if cfg.resume:
                found = load_checkpoint(run_dir, rhash)
                # No checkpoint yet (e.g. killed before the first write)
                # is a valid fresh start, not an error.
                if found is not None:
                    self.load_state_dict(found["payload"]["coordinator"])
                    log = log_from_state(found["payload"]["log"])
                    acc_history = [ev.mean_accuracy for ev in log.evals]
                    if found["manifest"]["completed"]:
                        self.close()
                        return log
                    start_round = int(found["payload"]["next_round"])
        try:
            for round_idx in range(start_round, cfg.rounds):
                record = self._run_round(round_idx, log)
                log.rounds.append(record)
                log.peak_storage_bytes = max(
                    log.peak_storage_bytes, self.strategy.storage_bytes()
                )
                if (round_idx + 1) % cfg.eval_every == 0 or round_idx == cfg.rounds - 1:
                    ev = self.evaluate(round_idx, log.total_macs)
                    self._drain_faults(log)  # eval waves can heal/retry too
                    self._absorb_publish(log)  # eval waves publish too
                    log.evals.append(ev)
                    acc_history.append(ev.mean_accuracy)
                    if self._converged(acc_history):
                        log.stopped_round = round_idx
                        log.stop_reason = "converged"
                        break
                if (
                    writer is not None
                    and cfg.checkpoint_every is not None
                    and (round_idx + 1) % cfg.checkpoint_every == 0
                ):
                    writer.write(
                        round_idx,
                        self._checkpoint_payload(log, next_round=round_idx + 1),
                        completed=False,
                    )
            else:
                log.stopped_round = cfg.rounds - 1
                log.stop_reason = "budget"
            if not log.evals or log.evals[-1].round_idx != log.stopped_round:
                log.evals.append(self.evaluate(log.stopped_round, log.total_macs))
                self._drain_faults(log)
                self._absorb_publish(log)
            if writer is not None:
                # Terminal checkpoint: marks the run finished so a later
                # --resume returns this log instead of training again.
                writer.write(
                    log.stopped_round,
                    self._checkpoint_payload(log, next_round=log.stopped_round + 1),
                    completed=True,
                )
        finally:
            self.close()
        return log

    def _converged(self, acc_history: list[float]) -> bool:
        """Stop when the last ``patience`` evals beat the prior best by <= δ.

        The baseline is the *running best* accuracy before the patience
        window, not the single eval ``patience + 1`` ago: a single noisy
        eval at that position used to dictate the stop decision all by
        itself (e.g. a transient dip there made every later window look
        like fresh improvement, postponing the stop indefinitely).
        """
        p = self.config.convergence_patience
        if len(acc_history) <= p:
            return False
        recent = acc_history[-p:]
        baseline = max(acc_history[:-p])
        return max(recent) - baseline <= self.config.convergence_delta

    # ------------------------------------------------------------------
    def _absorb_publish(
        self, log: TrainingLog, record: RoundRecord | None = None
    ) -> tuple[int, int]:
        """Fold new snapshot publish bytes into the transport ledger.

        Returns the (raw, wire) delta since the previous call and adds it
        to the log totals (and to ``record`` when given).  Only the
        process backend publishes; other executors stay at zero.  This is
        infrastructure telemetry — it never enters the trajectory export
        (CONTRACTS.md I10).
        """
        ex = self.executor
        cur = (
            int(getattr(ex, "raw_bytes_published_total", 0)),
            int(getattr(ex, "bytes_published_total", 0)),
        )
        raw_d, wire_d = cur[0] - self._pub_seen[0], cur[1] - self._pub_seen[1]
        self._pub_seen = cur
        log.publish_raw_bytes_total += raw_d
        log.publish_wire_bytes_total += wire_d
        if record is not None:
            record.publish_raw_bytes = raw_d
            record.publish_wire_bytes = wire_d
        return raw_d, wire_d

    # ------------------------------------------------------------------
    def _drain_faults(self, log: TrainingLog) -> None:
        """Fold the executor's recovery ledger into the log's meters."""
        for rec in self.executor.drain_fault_records():
            log.faults.append(rec)
            if rec.action == "pool_rebuild":
                log.worker_restarts += 1
            elif rec.action == "retry":
                log.retries += 1
            elif rec.action == "failed":
                log.failed_updates += 1

    def _quarantine(
        self,
        round_idx: int,
        pairs: list[tuple[TrainItem, "object"]],
        log: TrainingLog,
        events: list[str],
    ) -> list[tuple[TrainItem, "object"]]:
        """Validate each update; rejects go to the ledger, survivors return.

        Order-preserving and side-effect-free on a clean round: with no
        rejects the returned list is the input list, and the validator's
        running stats advance exactly as they would in any clean run —
        which is why quarantine-on and quarantine-off clean runs are
        bit-identical.
        """
        if self.validator is None:
            return pairs
        kept = []
        for item, update in pairs:
            reason = self.validator.admit(update)
            if reason is None:
                kept.append((item, update))
                continue
            log.quarantined_updates += 1
            log.faults.append(
                FaultRecord(
                    round_idx=round_idx,
                    kind="update_rejected",
                    action="quarantined",
                    client_id=update.client_id,
                    model_id=update.model_id,
                    detail=reason,
                )
            )
            events.append(f"quarantined update: {reason}")
        return kept

    # ------------------------------------------------------------------
    def _run_round(self, round_idx: int, log: TrainingLog) -> RoundRecord:
        if self._async_engine is not None:
            record = self._async_engine.step(round_idx, log)
            self._drain_faults(log)
            self._absorb_publish(log, record)
            return record
        cfg = self.config
        # Selection draws from the columnar view (registration order — the
        # same candidate ordering the raw list presents, so the selection
        # stream is bit-identical; CONTRACTS.md I12).
        fallback_before = getattr(self.selector, "offline_fallback_rounds", 0)
        participants = self.selector.select(
            round_idx, self.fleet.view(), cfg.clients_per_round, self._rng
        )
        assignments = self.strategy.assign(round_idx, participants, self._rng)
        models = self.strategy.models()

        items = [
            TrainItem(model_id, client.client_id, sub_idx)
            for client in participants
            for sub_idx, model_id in enumerate(assignments[client.client_id])
        ]
        raw = self.executor.train_round(round_idx, items, models)
        self._drain_faults(log)
        events: list[str] = []
        # Permanent failures (retry budget exhausted) are excluded from the
        # round like drops: no cost is charged (the item never completed)
        # and the round proceeds without them.
        pairs = []
        for item, result in zip(items, raw):
            if isinstance(result, ItemFailure):
                events.append(
                    f"work item (client {result.client_id}, model "
                    f"{result.model_id}) failed permanently after "
                    f"{result.attempts} attempts: {result.error}"
                )
            else:
                pairs.append((item, result))

        # Transport encode: each surviving update is re-encoded against the
        # dispatch-time server model (``models`` is untouched until the
        # aggregate below), in deterministic item order — error-feedback
        # residuals advance identically on every backend.  This happens
        # before cost metering (bytes_up becomes the on-wire size, and
        # wire_time re-prices the upload leg of round_time) and before
        # quarantine (poisoned tensors pass through the codec raw, so the
        # NaN scan still sees them).
        if self.transport is not None and self._transport_config.has_update:
            for item, update in pairs:
                self.transport.encode_update(
                    update,
                    models.get(item.model_id),
                    device=self.executor.clients_by_id[item.client_id].device,
                    wire_time=cfg.wire_time,
                )

        # A client's sub-models train sequentially on-device, clients in
        # parallel across the fleet: per-client sum, fleet-wide max.
        # Quarantined updates still count: the device trained and uploaded
        # either way — only aggregation ignores it.
        elapsed = {c.client_id: 0.0 for c in participants}
        for item, update in pairs:
            elapsed[item.client_id] += update.round_time
        client_times = [elapsed[c.client_id] for c in participants]
        macs = float(sum(u.macs_spent for _, u in pairs))
        bdown = sum(u.bytes_down for _, u in pairs)
        bup = sum(u.bytes_up for _, u in pairs)
        braw = sum(u.raw_bytes_up for _, u in pairs)

        survivors = self._quarantine(round_idx, pairs, log, events)
        updates = [u for _, u in survivors]
        if updates:
            events = list(self.strategy.aggregate(round_idx, updates, self._rng) or []) + events
            mean_loss = float(np.mean([u.train_loss for u in updates]))
        else:
            events.append("no usable updates this round; aggregation skipped")
            mean_loss = 0.0
        self.selector.observe_round(round_idx, updates)

        log.total_macs += macs
        log.total_bytes_down += bdown
        log.total_bytes_up += bup
        log.total_raw_bytes_up += braw
        if len(participants) < cfg.clients_per_round:
            events.append(
                f"under-provisioned round: selected {len(participants)} of "
                f"{cfg.clients_per_round} requested clients"
            )
        counters = self.strategy.scheduler_counters()
        # Fleet-store utility eviction joins the strategy-side count; both
        # are 0 unless evict_after is configured.
        evicted = int(counters.get("evicted", 0)) + self.fleet.advance(round_idx)
        log.evicted_clients += evicted
        record = RoundRecord(
            round_idx=round_idx,
            participants=[c.client_id for c in participants],
            assignments=assignments,
            mean_loss=mean_loss,
            macs=macs,
            bytes_down=bdown,
            bytes_up=bup,
            round_time=float(max(client_times)),
            num_models=len(models),
            events=events,
            scheduler=SchedulerRecord(
                selector=cfg.selector,
                pacing=cfg.pacing,
                straggler=cfg.straggler,
                requested=cfg.clients_per_round,
                selected=len(participants),
                evicted=evicted,
                offline_fallback_rounds=(
                    getattr(self.selector, "offline_fallback_rounds", 0)
                    - fallback_before
                ),
            ),
            raw_bytes_up=braw,
        )
        self._absorb_publish(log, record)
        return record

    # ------------------------------------------------------------------
    def evaluate(self, round_idx: int, cumulative_macs: float) -> EvalRecord:
        """Per-client test accuracy on each client's deployment.

        The deployed model is resolved exactly once per client
        (``eval_model_for`` can re-rank utilities, so calling it twice can
        record a different model than the one actually evaluated); clients
        sharing an ensemble are then batched into one large forward pass
        per deployment group, dispatched through the executor.  With
        ``eval_cache`` on, groups whose model versions are unchanged come
        from the cache instead (see module docstring).
        """
        used = [self.strategy.eval_model_for(c) for c in self.clients]
        accs = np.zeros(len(self.clients))
        cached_clients = 0
        if self._bespoke_logits:
            # Bespoke per-client evaluation; honor it client by client,
            # threading the already-resolved model so a stateful
            # eval_model_for is not consulted a second time.  Overrides
            # written against the pre-executor 2-arg hook signature are
            # still legal — only pass model_id if the override takes it.
            for i, client in enumerate(self.clients):
                kwargs = {"model_id": used[i]} if self._logits_takes_model_id else {}
                logits = self.strategy.client_logits(
                    client, client.data.x_test, **kwargs
                )
                accs[i] = accuracy(logits, client.data.y_test)
        else:
            groups: dict[tuple[str, ...], list[int]] = {}
            for i, client in enumerate(self.clients):
                key = self.strategy.eval_ensemble(client, used[i])
                groups.setdefault(key, []).append(i)
            chunk = self.config.eval_group_clients
            chunked: list[list[int]] = []
            tasks: list[EvalTask] = []
            for key, idxs in groups.items():
                for start in range(0, len(idxs), chunk):
                    part = idxs[start : start + chunk]
                    chunked.append(part)
                    tasks.append(
                        EvalTask(key, tuple(self.clients[i].client_id for i in part))
                    )
            models = self.strategy.models()
            if self.config.eval_cache:
                cached_clients = self._evaluate_cached(chunked, tasks, models, accs)
            else:
                results = self.executor.eval_round(
                    tasks, models, self.config.eval_batch_size
                )
                for idxs, group_accs in zip(chunked, results):
                    accs[idxs] = group_accs
        return EvalRecord(
            round_idx=round_idx,
            cumulative_macs=cumulative_macs,
            client_accuracy=accs,
            client_model=used,
            mean_accuracy=float(accs.mean()),
            cached_clients=cached_clients,
            evaluated_clients=len(self.clients) - cached_clients,
        )

    # ------------------------------------------------------------------
    def _evaluate_cached(
        self,
        chunked: list[list[int]],
        tasks: list[EvalTask],
        models: dict,
        accs: np.ndarray,
    ) -> int:
        """Version-keyed evaluation of the chunked deployment groups.

        Fills ``accs`` in place and returns how many clients were served
        from the accuracy cache.  Missed multi-member groups are rebuilt
        from per-``(model version, chunk)`` logits — themselves cached
        across sweeps, so a partially changed ensemble recomputes only its
        changed members.  Missed single-member groups run as plain
        accuracy tasks in the same executor wave (their logits could never
        be reused — see the module docstring).  Both paths re-derive
        :func:`~repro.fl.executor._eval_task`'s arithmetic operation for
        operation, keeping cache-on and cache-off sweeps bit-identical.
        """
        self._version_watch.check_all(models, where="eval cache read")
        cached_clients = 0
        acc_touched: set[tuple] = set()
        logit_touched: set[tuple] = set()
        misses: list[tuple[tuple, EvalTask, list[int]]] = []
        single_misses: list[tuple[tuple, EvalTask, list[int]]] = []
        for idxs, task in zip(chunked, tasks):
            versions = tuple(models[mid].version for mid in task.model_ids)
            key = (task.model_ids, versions, task.client_ids)
            acc_touched.add(key)
            hit = self._eval_acc_cache.get(key)
            if hit is not None:
                accs[idxs] = hit
                cached_clients += len(idxs)
                # Keep the hit group's member logits warm too: if one
                # member trains before the next sweep, that sweep reuses
                # the idle members' logits instead of re-running the full
                # ensemble (they'd otherwise be evicted below).
                if len(task.model_ids) > 1:
                    for mid, ver in zip(task.model_ids, versions):
                        logit_touched.add((mid, ver, task.client_ids))
            elif len(task.model_ids) == 1:
                single_misses.append((key, task, idxs))
            else:
                misses.append((key, task, idxs))
        if misses or single_misses:
            # Member logits the missed ensembles need, minus what the cache
            # already holds.  Keys are already distinct: groups partition
            # the fleet, so no two missed groups share a (model, version,
            # chunk) triple.  Single-member misses ride the same executor
            # wave as plain accuracy tasks (their logits could never be
            # reused, and accuracies are bytes over the wire where logits
            # are matrices) — one combined barrier, not two.
            needed: list[tuple] = []
            for _, task, _ in misses:
                if self._group_rows(task) == 0:
                    continue  # no test data: zeros, no forward pass needed
                for mid in task.model_ids:
                    lkey = (mid, models[mid].version, task.client_ids)
                    logit_touched.add(lkey)
                    if lkey not in self._eval_logits_cache:
                        needed.append(lkey)
            eouts, louts = self.executor.eval_and_logits_round(
                [t for _, t, _ in single_misses],
                [EvalTask((mid,), cids) for mid, _, cids in needed],
                models,
                self.config.eval_batch_size,
            )
            for (key, _, idxs), group_accs in zip(single_misses, eouts):
                self._eval_acc_cache[key] = group_accs
                accs[idxs] = group_accs
            for lkey, out in zip(needed, louts):
                self._eval_logits_cache[lkey] = out
            for key, task, idxs in misses:
                group_accs = self._combine_group(task, models)
                self._eval_acc_cache[key] = group_accs
                accs[idxs] = group_accs
        # Evict entries the latest sweep no longer references (stale
        # versions, regrouped chunks): memory stays at one sweep's worth.
        self._eval_acc_cache = {
            k: v for k, v in self._eval_acc_cache.items() if k in acc_touched
        }
        self._eval_logits_cache = {
            k: v for k, v in self._eval_logits_cache.items() if k in logit_touched
        }
        return cached_clients

    def _group_rows(self, task: EvalTask) -> int:
        # The executor already indexed the same fleet by client id.
        clients_by_id = self.executor.clients_by_id
        return sum(clients_by_id[cid].data.num_test for cid in task.client_ids)

    def _combine_group(self, task: EvalTask, models: dict) -> np.ndarray:
        """Ensemble-average cached member logits into per-client accuracies.

        Runs :func:`~repro.fl.executor.ensemble_accuracies` — the same
        function the uncached ``_eval_task`` path ends in — over the cached
        member logits, so cache-on and cache-off sweeps share their
        arithmetic structurally.
        """
        if self._group_rows(task) == 0:
            return np.zeros(len(task.client_ids))
        return ensemble_accuracies(
            (
                self._eval_logits_cache[(mid, models[mid].version, task.client_ids)]
                for mid in task.model_ids
            ),
            len(task.model_ids),
            self.executor.clients_by_id,
            task.client_ids,
        )
