"""The FL coordinator: round loop, cost accounting, and evaluation.

Drives any :class:`~repro.fl.strategy.Strategy` through the synchronous FL
lifecycle of §1: select participants, ship models, run local training,
collect updates, aggregate, and periodically evaluate every registered
client on its deployed model.  All costs the paper reports — training MACs,
network volume, server storage, round completion times — are metered here
so every method is measured identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .client import LocalTrainer, LocalTrainerConfig
from .selection import select_uniform
from .strategy import Strategy
from .types import EvalRecord, FLClient, RoundRecord, TrainingLog

__all__ = ["CoordinatorConfig", "Coordinator"]


@dataclass(frozen=True)
class CoordinatorConfig:
    """Run-level configuration (paper §5.1 / Table 7 analogues)."""

    rounds: int = 100
    clients_per_round: int = 10
    trainer: LocalTrainerConfig = LocalTrainerConfig()
    eval_every: int = 10
    seed: int = 0
    # Paper stop rule: "training is considered complete when either the
    # maximum number of training rounds is reached or the validation
    # accuracy converges, [defined as] not improving by more than 1% over
    # 10 consecutive rounds".  Our unit is *evaluations*.
    convergence_patience: int = 10
    convergence_delta: float = 0.01
    eval_batch_size: int = 256


class Coordinator:
    """Synchronous FL simulation loop."""

    def __init__(
        self,
        strategy: Strategy,
        clients: list[FLClient],
        config: CoordinatorConfig,
    ):
        if not clients:
            raise ValueError("cannot run FL with zero clients")
        self.strategy = strategy
        self.clients = clients
        self.config = config
        self.trainer = LocalTrainer(config.trainer)
        self._rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    def run(self) -> TrainingLog:
        """Execute the configured number of rounds (or stop at convergence)."""
        cfg = self.config
        log = TrainingLog(strategy=self.strategy.name)
        best_acc_history: list[float] = []
        for round_idx in range(cfg.rounds):
            record = self._run_round(round_idx, log)
            log.rounds.append(record)
            log.peak_storage_bytes = max(log.peak_storage_bytes, self.strategy.storage_bytes())
            if (round_idx + 1) % cfg.eval_every == 0 or round_idx == cfg.rounds - 1:
                ev = self.evaluate(round_idx, log.total_macs)
                log.evals.append(ev)
                best_acc_history.append(ev.mean_accuracy)
                if self._converged(best_acc_history):
                    log.stopped_round = round_idx
                    log.stop_reason = "converged"
                    break
        else:
            log.stopped_round = cfg.rounds - 1
            log.stop_reason = "budget"
        if not log.evals or log.evals[-1].round_idx != log.stopped_round:
            log.evals.append(self.evaluate(log.stopped_round, log.total_macs))
        return log

    def _converged(self, acc_history: list[float]) -> bool:
        p = self.config.convergence_patience
        if len(acc_history) <= p:
            return False
        recent = acc_history[-p:]
        baseline = acc_history[-p - 1]
        return max(recent) - baseline <= self.config.convergence_delta

    # ------------------------------------------------------------------
    def _run_round(self, round_idx: int, log: TrainingLog) -> RoundRecord:
        cfg = self.config
        participants = select_uniform(self.clients, cfg.clients_per_round, self._rng)
        assignments = self.strategy.assign(round_idx, participants, self._rng)
        models = self.strategy.models()

        updates = []
        client_times: list[float] = []
        for client in participants:
            elapsed = 0.0
            for sub_idx, model_id in enumerate(assignments[client.client_id]):
                work = models[model_id].clone(keep_id=True)
                crng = np.random.default_rng(
                    (cfg.seed * 1_000_003 + round_idx * 1009 + client.client_id * 31 + sub_idx)
                    % (2**63)
                )
                update = self.trainer.train(work, client, crng)
                updates.append(update)
                elapsed += update.round_time  # sequential local training
            client_times.append(elapsed)

        events = self.strategy.aggregate(round_idx, updates, self._rng)

        macs = float(sum(u.macs_spent for u in updates))
        bdown = sum(u.bytes_down for u in updates)
        bup = sum(u.bytes_up for u in updates)
        log.total_macs += macs
        log.total_bytes_down += bdown
        log.total_bytes_up += bup
        return RoundRecord(
            round_idx=round_idx,
            participants=[c.client_id for c in participants],
            assignments=assignments,
            mean_loss=float(np.mean([u.train_loss for u in updates])),
            macs=macs,
            bytes_down=bdown,
            bytes_up=bup,
            round_time=float(max(client_times)),
            num_models=len(models),
            events=list(events or []),
        )

    # ------------------------------------------------------------------
    def evaluate(self, round_idx: int, cumulative_macs: float) -> EvalRecord:
        """Per-client test accuracy on each client's deployment."""
        accs = np.zeros(len(self.clients))
        used: list[str] = []
        for i, client in enumerate(self.clients):
            used.append(self.strategy.eval_model_for(client))
            logits = self.strategy.client_logits(client, client.data.x_test)
            accs[i] = float((logits.argmax(axis=-1) == client.data.y_test).mean())
        return EvalRecord(
            round_idx=round_idx,
            cumulative_macs=cumulative_macs,
            client_accuracy=accs,
            client_model=used,
            mean_accuracy=float(accs.mean()),
        )
