"""Client-side local training.

Implements the per-participant step of Algorithm 1 (``ClientTrain``):
mini-batch SGD for ``local_steps`` steps on the client's data, returning
the trained weights, the mean gradient (FedTrans's activeness signal), the
mean training loss, and cost accounting.

Supports the FedProx proximal term (μ/2·‖w − w_global‖²) so FedProx and
"FedTrans + FedProx" (Fig. 8) share this code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.latency import client_round_time
from ..nn.model import CellModel
from ..nn.optim import SGD
from .types import ClientUpdate, FLClient

__all__ = ["LocalTrainerConfig", "LocalTrainer"]


@dataclass(frozen=True)
class LocalTrainerConfig:
    """Hyperparameters of local training (paper Table 7 defaults)."""

    batch_size: int = 10
    local_steps: int = 20
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    prox_mu: float = 0.0  # FedProx proximal coefficient; 0 disables
    clip_norm: float = 10.0  # global gradient-norm clip per step; 0 disables


class LocalTrainer:
    """Runs local training rounds for participants."""

    def __init__(self, config: LocalTrainerConfig):
        self.config = config

    def train(
        self,
        model: CellModel,
        client: FLClient,
        rng: np.random.Generator,
    ) -> ClientUpdate:
        """Train ``model`` in place on ``client``'s data; return the update.

        ``model`` must be a private copy (the coordinator clones the server
        model per participant, as synchronous FL starts every participant
        from identical weights).
        """
        cfg = self.config
        x, y = client.data.x_train, client.data.y_train
        n = len(y)
        if n == 0:
            raise ValueError(f"client {client.client_id} has no training data")
        opt = SGD(cfg.lr, cfg.momentum, cfg.weight_decay)
        global_params = {k: v.copy() for k, v in model.params().items()} if cfg.prox_mu else None

        grad_sum: dict[str, np.ndarray] | None = None
        losses = []
        for _ in range(cfg.local_steps):
            idx = rng.integers(0, n, size=min(cfg.batch_size, n))
            model.zero_grad()
            losses.append(model.loss_and_grad(x[idx], y[idx]))
            grads = model.grads()
            params = model.params()
            if cfg.clip_norm:
                # float(): a Python scalar, so scaling float32 grads cannot
                # upcast them; in-place scaling (the buffers are zeroed at
                # the top of every step) replaces a full gradient-tree
                # allocation per clipped step.  The norm itself must stay
                # (g**2).sum() — pairwise summation; a BLAS dot orders the
                # additions differently and would shift clip-triggering
                # runs off their pre-refactor trajectories.
                gnorm = float(np.sqrt(sum(float((g**2).sum()) for g in grads.values())))
                if gnorm > cfg.clip_norm:
                    scale = cfg.clip_norm / gnorm
                    for g in grads.values():
                        g *= scale
            if cfg.prox_mu:
                for k in grads:
                    grads[k] = grads[k] + cfg.prox_mu * (params[k] - global_params[k])
            if grad_sum is None:
                grad_sum = {k: g.copy() for k, g in grads.items()}
            else:
                for k, g in grads.items():
                    grad_sum[k] += g
            opt.step(params, grads)
            # The optimizer writes through the live param references, which
            # bypasses set_params — record the mutation for version-keyed
            # caches (this clone is a keep_id replica of the server model).
            model.bump_version()

        mean_grad = {k: g / cfg.local_steps for k, g in grad_sum.items()}
        samples_seen = cfg.local_steps * min(cfg.batch_size, n)
        macs = float(model.train_macs_per_sample()) * samples_seen
        nbytes = model.nbytes()
        rt = client_round_time(
            client.device, model.macs(), nbytes, min(cfg.batch_size, n), cfg.local_steps
        )
        return ClientUpdate(
            client_id=client.client_id,
            model_id=model.model_id,
            params=model.get_params(),
            state=model.get_state(),
            grad=mean_grad,
            train_loss=float(np.mean(losses)),
            num_samples=n,
            macs_spent=macs,
            bytes_down=nbytes,
            bytes_up=nbytes,
            round_time=rt,
            raw_bytes_up=nbytes,
        )
