"""Shared submodel machinery for the width-scaling baselines.

HeteroFL, SplitMix, and FLuID all carve *subnetworks* out of a large global
model by keeping a subset of channels per cell.  A :class:`SubnetSpec`
records which output/hidden channel indices each cell keeps; from it we can

* :func:`build_subnet` — materialize the submodel (same ``cell_id`` lineage
  as the global model, narrowed tensors), and
* :func:`scatter_average` — average submodel updates back into global
  coordinates, where each global coordinate averages exactly the client
  updates that covered it (HeteroFL's aggregation rule).

``leading`` specs (``arange`` indices) give HeteroFL's nested subnetworks;
score-ranked specs give FLuID's invariant dropout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.model import CellModel
from ..nn.param_ops import ParamTree

__all__ = ["SubnetSpec", "ratio_spec", "build_subnet", "param_index_map", "scatter_average"]


@dataclass(frozen=True)
class SubnetSpec:
    """Kept channel indices per cell (missing cell => full width)."""

    keep_out: dict[str, np.ndarray] = field(default_factory=dict)
    keep_hidden: dict[str, np.ndarray] = field(default_factory=dict)

    def is_full(self) -> bool:
        return not self.keep_out and not self.keep_hidden


def _keep_count(width: int, ratio: float) -> int:
    return max(1, int(round(width * ratio)))


def ratio_spec(
    global_model: CellModel,
    ratio: float,
    scores: dict[str, np.ndarray] | None = None,
) -> SubnetSpec:
    """Build a spec keeping a ``ratio`` fraction of every narrowable width.

    Without ``scores``, the *leading* channels are kept (HeteroFL's nested
    subnets).  With ``scores`` (one array per cell/axis key, larger =
    more important), the top-scoring channels are kept — FLuID's invariant
    dropout, which drops the least-recently-changing neurons.  Indices are
    sorted so kept channels preserve their relative order.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError("ratio must lie in (0, 1]")
    keep_out: dict[str, np.ndarray] = {}
    keep_hidden: dict[str, np.ndarray] = {}
    if ratio == 1.0:
        return SubnetSpec()

    def pick(width: int, key: str) -> np.ndarray:
        k = _keep_count(width, ratio)
        if scores is not None and key in scores:
            s = scores[key]
            if len(s) != width:
                raise ValueError(f"score length {len(s)} != width {width} for {key}")
            return np.sort(np.argsort(-s)[:k])
        return np.arange(k)

    for cell in global_model.cells:
        roles = {r for axroles in cell.axis_roles().values() for r in axroles}
        if "out" in roles:
            keep_out[cell.cell_id] = pick(cell.out_dim, f"{cell.cell_id}/out")
        if "hidden" in roles:
            keep_hidden[cell.cell_id] = pick(cell.hidden_dim, f"{cell.cell_id}/hidden")
    return SubnetSpec(keep_out, keep_hidden)


def build_subnet(global_model: CellModel, spec: SubnetSpec) -> CellModel:
    """Materialize the submodel described by ``spec`` (shares cell ids).

    The result carries the *global model's* version (see
    ``CellModel.sync_version``): HeteroFL/FLuID rebuild their submodels
    under stable model ids after every aggregation, and a rebuilt subnet's
    weights changed exactly when the global weights did — a fresh-clone
    version of 0 every rebuild would make version-keyed caches (the eval
    cache, process-backend snapshot deltas) treat retrained weights as
    unchanged.  FLuID's score-driven spec changes are covered too: specs
    only move in ``aggregate``, right after the global model's own bump.
    """
    sub = global_model.clone()
    if spec.is_full():
        sub.sync_version(global_model.version)
        return sub
    prev_out: np.ndarray | None = None
    for cell in sub.cells:
        out_idx = spec.keep_out.get(cell.cell_id)
        hid_idx = spec.keep_hidden.get(cell.cell_id)
        if out_idx is not None or hid_idx is not None or prev_out is not None:
            cell.narrow(out_idx=out_idx, in_idx=prev_out, hidden_idx=hid_idx)
        prev_out = out_idx
    sub.bump_version()  # narrowed in place, outside the mutating model API
    sub.macs()  # re-validate the chain (recomputes: the version moved)
    sub.sync_version(global_model.version)
    return sub


def param_index_map(
    global_model: CellModel, spec: SubnetSpec
) -> dict[str, tuple[np.ndarray | None, ...]]:
    """Per-tensor kept-index tuples, in *global* coordinates.

    For each (possibly narrowed) tensor, yields one entry per axis: the
    global indices the subnet's coordinates map to, or ``None`` for axes
    that kept full width.
    """
    out: dict[str, tuple[np.ndarray | None, ...]] = {}
    prev_out: np.ndarray | None = None
    for cell in global_model.cells:
        sel = {
            "out": spec.keep_out.get(cell.cell_id),
            "hidden": spec.keep_hidden.get(cell.cell_id),
            "in": prev_out,
            None: None,
        }
        for key, axroles in cell.axis_roles().items():
            idxs = tuple(sel[r] for r in axroles)
            if any(i is not None for i in idxs):
                out[f"{cell.cell_id}/{key}"] = idxs
        prev_out = sel["out"]
    return out


def _global_index(
    idxs: tuple[np.ndarray | None, ...], shape: tuple[int, ...]
) -> tuple[np.ndarray, ...]:
    full = [
        i if i is not None else np.arange(dim)
        for i, dim in zip(list(idxs) + [None] * (len(shape) - len(idxs)), shape)
    ]
    return np.ix_(*full)


def scatter_average(
    global_params: ParamTree,
    contributions: list[tuple[ParamTree, SubnetSpec, float]],
    index_maps: dict[int, dict[str, tuple[np.ndarray | None, ...]]],
) -> ParamTree:
    """Average submodel updates back into the global tensors.

    ``contributions`` holds ``(params, spec, weight)`` per update;
    ``index_maps[id(spec)]`` must hold the precomputed
    :func:`param_index_map` for each distinct spec.  Coordinates covered by
    no update keep the current global value.
    """
    sums = {k: np.zeros_like(v) for k, v in global_params.items()}
    weight = {k: np.zeros(v.shape) for k, v in global_params.items()}
    for params, spec, w in contributions:
        imap = index_maps[id(spec)]
        for k, v in params.items():
            if k not in global_params:
                continue
            idxs = imap.get(k)
            if idxs is None:
                sums[k] += w * v
                weight[k] += w
            else:
                gix = _global_index(idxs, global_params[k].shape)
                sums[k][gix] += w * v
                weight[k][gix] += w
    out: ParamTree = {}
    for k, g in global_params.items():
        covered = weight[k] > 0
        merged = g.copy()
        merged[covered] = sums[k][covered] / weight[k][covered]
        out[k] = merged
    return out
