"""Centralized ("cloud") training — the hypothetical upper bound of Fig. 2.

Pools every client's training data on one machine, shuffles it (making the
data homogeneous), and trains a single model with SGD.  The paper uses this
as the performance ceiling that FL methods are measured against; it is not
an FL strategy (no privacy, no communication) and so bypasses the
coordinator entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.federated import FederatedDataset
from ..nn.model import CellModel
from ..nn.optim import SGD

__all__ = ["CloudResult", "train_centralized"]


@dataclass(frozen=True)
class CloudResult:
    """Outcome of a centralized run."""

    mean_client_accuracy: float  # averaged over the same per-client test sets
    pooled_accuracy: float
    total_macs: float
    steps: int


def train_centralized(
    model: CellModel,
    dataset: FederatedDataset,
    epochs: int,
    batch_size: int,
    lr: float,
    seed: int = 0,
    momentum: float = 0.0,
) -> CloudResult:
    """Train ``model`` in place on pooled data; report the paper's metrics."""
    rng = np.random.default_rng(seed)
    x, y = dataset.pooled_train()
    n = len(y)
    opt = SGD(lr, momentum=momentum)
    steps = 0
    for _ in range(epochs):
        perm = rng.permutation(n)
        for start in range(0, n, batch_size):
            idx = perm[start : start + batch_size]
            model.zero_grad()
            model.loss_and_grad(x[idx], y[idx])
            opt.step(model.params(), model.grads())
            model.bump_version()  # in-place write bypasses set_params
            steps += 1
    total_macs = float(model.train_macs_per_sample()) * steps * batch_size
    per_client = [
        model.evaluate(c.x_test, c.y_test)[1] for c in dataset.clients
    ]
    xt, yt = dataset.pooled_test()
    _, pooled = model.evaluate(xt, yt)
    return CloudResult(
        mean_client_accuracy=float(np.mean(per_client)),
        pooled_accuracy=float(pooled),
        total_macs=total_macs,
        steps=steps,
    )
