"""SplitMix (Hong et al., ICLR 2022): split a wide net, mix an ensemble.

The width-``1`` budget is split into ``k`` independent narrow *base* models
(each a 1/k-width network with its own random initialization).  Every round
a participant trains **all** the base models its budget affords — which is
why SplitMix's network volume dwarfs everyone else's in Table 2 — and
deploys the ensemble (averaged logits) of that many base nets.

Aggregation is plain FedAvg per base model.
"""

from __future__ import annotations

import numpy as np

from ..core.transform import reinitialize
from ..fl.strategy import Strategy
from ..fl.types import ClientUpdate, FLClient
from ..nn.model import CellModel
from ..nn.param_ops import tree_average
from .subnet import build_subnet, ratio_spec

__all__ = ["SplitMixStrategy"]


class SplitMixStrategy(Strategy):
    """k independent narrow base nets, ensembled per client budget."""

    name = "splitmix"

    def __init__(self, global_model: CellModel, k: int = 4, seed: int = 0):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        rng = np.random.default_rng(seed)
        spec = ratio_spec(global_model, 1.0 / k)
        self._base_ids: list[str] = []
        self._models: dict[str, CellModel] = {}
        for i in range(k):
            base = build_subnet(global_model, spec)
            base.model_id = f"splitmix_b{i}"
            reinitialize(base, rng)  # independent random init per base net
            self._base_ids.append(base.model_id)
            self._models[base.model_id] = base
        self._base_macs = self._models[self._base_ids[0]].macs()

    # ------------------------------------------------------------------
    def models(self) -> dict[str, CellModel]:
        return dict(self._models)

    def budget_count(self, client: FLClient) -> int:
        """How many base nets this client can train/deploy."""
        m = int(client.capacity_macs // max(self._base_macs, 1))
        return int(np.clip(m, 1, self.k))

    def assign(
        self, round_idx: int, participants: list[FLClient], rng: np.random.Generator
    ) -> dict[int, list[str]]:
        out: dict[int, list[str]] = {}
        for c in participants:
            m = self.budget_count(c)
            # Rotate which base nets the client trains so all k receive
            # updates even from low-budget fleets.
            start = int(rng.integers(0, self.k))
            out[c.client_id] = [self._base_ids[(start + j) % self.k] for j in range(m)]
        return out

    def aggregate(
        self, round_idx: int, updates: list[ClientUpdate], rng: np.random.Generator
    ) -> list[str]:
        by_model: dict[str, list[ClientUpdate]] = {}
        for u in updates:
            by_model.setdefault(u.model_id, []).append(u)
        for mid, ups in by_model.items():
            weights = [float(u.num_samples) for u in ups]
            self._models[mid].set_params(tree_average([u.params for u in ups], weights))
            states = [u.state for u in ups]
            if states and states[0]:
                self._models[mid].set_state(tree_average(states, weights))
        return []

    # ------------------------------------------------------------------
    def eval_model_for(self, client: FLClient) -> str:
        return self._base_ids[0]

    def eval_ensemble(self, client: FLClient, model_id: str) -> tuple[str, ...]:
        """Ensemble the first ``budget_count`` base nets (averaged logits)."""
        return tuple(self._base_ids[: self.budget_count(client)])
