"""HeteroFL (Diao et al., ICLR 2020): static nested width-scaled subnets.

The server keeps one global model and a fixed ladder of width ratios
(e.g. 1, 1/2, 1/4, 1/8).  Every client trains the largest ratio its
hardware fits; submodels are the *leading* channels of the global model
(nested), and aggregation averages each global coordinate over exactly the
client updates that covered it.

Following the paper's Appendix A.1, the global model handed to HeteroFL in
the benches is the largest model FedTrans produced, so both methods span
the same complexity range.
"""

from __future__ import annotations

import numpy as np

from ..fl.strategy import Strategy
from ..fl.types import ClientUpdate, FLClient
from ..nn.model import CellModel
from .subnet import SubnetSpec, build_subnet, param_index_map, ratio_spec, scatter_average

__all__ = ["HeteroFLStrategy"]

DEFAULT_RATIOS = (1.0, 0.5, 0.25, 0.125)


class HeteroFLStrategy(Strategy):
    """Static width-ratio submodels with crop/scatter aggregation."""

    name = "heterofl"

    def __init__(self, global_model: CellModel, ratios: tuple[float, ...] = DEFAULT_RATIOS):
        if not ratios or any(not 0 < r <= 1 for r in ratios):
            raise ValueError("ratios must lie in (0, 1]")
        self.global_model = global_model
        self._ratios = tuple(sorted(set(ratios), reverse=True))
        self._specs: dict[str, SubnetSpec] = {}
        self._index_maps: dict[int, dict] = {}
        self._models: dict[str, CellModel] = {}
        self._spec_of_model: dict[str, SubnetSpec] = {}
        for i, r in enumerate(self._ratios):
            spec = ratio_spec(global_model, r)
            mid = f"heterofl_r{r:g}"
            self._specs[mid] = spec
            self._index_maps[id(spec)] = param_index_map(global_model, spec)
        self._refresh_submodels()

    # ------------------------------------------------------------------
    def _refresh_submodels(self) -> None:
        """Re-derive every submodel from the current global weights."""
        self._models = {}
        self._spec_of_model = {}
        for mid, spec in self._specs.items():
            sub = build_subnet(self.global_model, spec)
            sub.model_id = mid  # stable ids across rounds
            self._models[mid] = sub
            self._spec_of_model[mid] = spec

    def models(self) -> dict[str, CellModel]:
        return dict(self._models)

    # ------------------------------------------------------------------
    def assign(
        self, round_idx: int, participants: list[FLClient], rng: np.random.Generator
    ) -> dict[int, list[str]]:
        out: dict[int, list[str]] = {}
        for c in participants:
            out[c.client_id] = [self._largest_compatible(c)]
        return out

    def _largest_compatible(self, client: FLClient) -> str:
        fits = [
            (self._models[mid].macs(), mid)
            for mid in self._models
            if self._models[mid].macs() <= client.capacity_macs
        ]
        if not fits:
            return min(self._models, key=lambda m: self._models[m].macs())
        return max(fits)[1]

    # ------------------------------------------------------------------
    def aggregate(
        self, round_idx: int, updates: list[ClientUpdate], rng: np.random.Generator
    ) -> list[str]:
        if not updates:
            return []
        contribs = [
            (u.params, self._spec_of_model[u.model_id], float(u.num_samples)) for u in updates
        ]
        merged = scatter_average(self.global_model.params(), contribs, self._index_maps)
        self.global_model.set_params(merged)
        state_contribs = [
            (u.state, self._spec_of_model[u.model_id], float(u.num_samples))
            for u in updates
            if u.state
        ]
        if state_contribs:
            merged_state = scatter_average(
                self.global_model.state(), state_contribs, self._index_maps
            )
            self.global_model.set_state(merged_state)
        self._refresh_submodels()
        return []

    def eval_model_for(self, client: FLClient) -> str:
        return self._largest_compatible(client)
