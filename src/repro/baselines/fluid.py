"""FLuID (Wang et al., NeurIPS 2023): invariant dropout for stragglers.

One global model; weaker clients receive a submodel in which each layer's
most *invariant* neurons — those whose aggregated weights changed least in
recent rounds — are dropped.  The intuition: converged neurons lose the
least from skipping a straggler's updates.  Kept-channel choices therefore
change over training as different neurons stabilize, unlike HeteroFL's
fixed leading crops.

Implementation:

* per narrowable axis we keep an EMA of per-channel global-weight change;
* each round, submodels for the ratio ladder are rebuilt keeping the
  *highest*-movement channels;
* aggregation scatters updates into global coordinates exactly as HeteroFL
  does, then the movement scores are refreshed from the global delta.
"""

from __future__ import annotations

import numpy as np

from ..fl.strategy import Strategy
from ..fl.types import ClientUpdate, FLClient
from ..nn.model import CellModel
from ..nn.param_ops import ParamTree
from .subnet import SubnetSpec, build_subnet, param_index_map, ratio_spec, scatter_average

__all__ = ["FLuIDStrategy"]

DEFAULT_RATIOS = (1.0, 0.5, 0.25)


def _channel_movement(global_model: CellModel, delta: ParamTree) -> dict[str, np.ndarray]:
    """Per-channel L2 movement for every narrowable axis.

    Returns scores keyed ``"{cell_id}/out"`` / ``"{cell_id}/hidden"``; each
    channel's score sums the squared delta of every tensor slice owned by
    that channel.
    """
    scores: dict[str, np.ndarray] = {}
    for cell in global_model.cells:
        for key, axroles in cell.axis_roles().items():
            full = f"{cell.cell_id}/{key}"
            if full not in delta:
                continue
            d = delta[full]
            for axis, role in enumerate(axroles):
                if role not in ("out", "hidden"):
                    continue
                skey = f"{cell.cell_id}/{role}"
                other_axes = tuple(a for a in range(d.ndim) if a != axis)
                contrib = (d**2).sum(axis=other_axes) if other_axes else d**2
                if skey in scores:
                    scores[skey] += contrib
                else:
                    scores[skey] = contrib.copy()
    return {k: np.sqrt(v) for k, v in scores.items()}


class FLuIDStrategy(Strategy):
    """Invariant-dropout submodels over a single global model."""

    name = "fluid"

    def __init__(
        self,
        global_model: CellModel,
        ratios: tuple[float, ...] = DEFAULT_RATIOS,
        score_momentum: float = 0.5,
    ):
        if not ratios or any(not 0 < r <= 1 for r in ratios):
            raise ValueError("ratios must lie in (0, 1]")
        if 1.0 not in ratios:
            raise ValueError("FLuID keeps the full model for capable clients (ratio 1.0)")
        self.global_model = global_model
        self._ratios = tuple(sorted(set(ratios), reverse=True))
        self.score_momentum = score_momentum
        # Neutral initial scores -> initial subnets equal leading crops.
        self._scores: dict[str, np.ndarray] = {}
        self._models: dict[str, CellModel] = {}
        self._spec_of_model: dict[str, SubnetSpec] = {}
        self._index_maps: dict[int, dict] = {}
        self._rebuild_submodels()

    # ------------------------------------------------------------------
    def _rebuild_submodels(self) -> None:
        self._models = {}
        self._spec_of_model = {}
        self._index_maps = {}
        for r in self._ratios:
            spec = ratio_spec(self.global_model, r, scores=self._scores or None)
            mid = f"fluid_r{r:g}"
            sub = build_subnet(self.global_model, spec)
            sub.model_id = mid
            self._models[mid] = sub
            self._spec_of_model[mid] = spec
            self._index_maps[id(spec)] = param_index_map(self.global_model, spec)

    def models(self) -> dict[str, CellModel]:
        return dict(self._models)

    def _largest_compatible(self, client: FLClient) -> str:
        fits = [
            (self._models[mid].macs(), mid)
            for mid in self._models
            if self._models[mid].macs() <= client.capacity_macs
        ]
        if not fits:
            return min(self._models, key=lambda m: self._models[m].macs())
        return max(fits)[1]

    def assign(
        self, round_idx: int, participants: list[FLClient], rng: np.random.Generator
    ) -> dict[int, list[str]]:
        return {c.client_id: [self._largest_compatible(c)] for c in participants}

    # ------------------------------------------------------------------
    def aggregate(
        self, round_idx: int, updates: list[ClientUpdate], rng: np.random.Generator
    ) -> list[str]:
        if not updates:
            return []
        before = self.global_model.get_params()
        contribs = [
            (u.params, self._spec_of_model[u.model_id], float(u.num_samples)) for u in updates
        ]
        merged = scatter_average(before, contribs, self._index_maps)
        self.global_model.set_params(merged)
        state_contribs = [
            (u.state, self._spec_of_model[u.model_id], float(u.num_samples))
            for u in updates
            if u.state
        ]
        if state_contribs:
            self.global_model.set_state(
                scatter_average(self.global_model.state(), state_contribs, self._index_maps)
            )
        # Refresh invariance scores from this round's global movement.
        delta = {k: merged[k] - before[k] for k in merged}
        fresh = _channel_movement(self.global_model, delta)
        for key, s in fresh.items():
            if key in self._scores:
                self._scores[key] = (
                    self.score_momentum * self._scores[key] + (1 - self.score_momentum) * s
                )
            else:
                self._scores[key] = s
        self._rebuild_submodels()
        return []

    def eval_model_for(self, client: FLClient) -> str:
        return self._largest_compatible(client)
