"""Single-global-model baselines: FedAvg, FedProx, FedYogi.

* **FedAvg** (McMahan et al.) — sample-weighted average of client weights.
* **FedProx** (Li et al.) — FedAvg server + a proximal term in the local
  objective; the term lives in :class:`~repro.fl.client.LocalTrainerConfig`
  (``prox_mu``), so use :func:`fedprox_trainer_config` together with this
  strategy.
* **FedYogi** (Reddi et al.) — FedAvg's pseudo-gradient fed through the
  Yogi adaptive server optimizer.

Single-model training ignores client capacity by design — that is exactly
the deployment problem the paper's Fig. 2 illustrates (one size fits none).
"""

from __future__ import annotations

import numpy as np

from ..fl.client import LocalTrainerConfig
from ..fl.strategy import Strategy
from ..fl.types import ClientUpdate, FLClient
from ..nn.model import CellModel
from ..nn.optim import Yogi
from ..nn.param_ops import tree_average, tree_sub

__all__ = ["SingleModelStrategy", "fedavg", "fedyogi", "fedprox_trainer_config"]


class SingleModelStrategy(Strategy):
    """One global model for every client."""

    def __init__(self, model: CellModel, server_opt: Yogi | None = None, name: str = "fedavg"):
        self.name = name
        self.model = model
        self.server_opt = server_opt

    def models(self) -> dict[str, CellModel]:
        return {self.model.model_id: self.model}

    def assign(
        self, round_idx: int, participants: list[FLClient], rng: np.random.Generator
    ) -> dict[int, list[str]]:
        return {c.client_id: [self.model.model_id] for c in participants}

    def aggregate(
        self, round_idx: int, updates: list[ClientUpdate], rng: np.random.Generator
    ) -> list[str]:
        if not updates:
            return []
        weights = [float(u.num_samples) for u in updates]
        avg = tree_average([u.params for u in updates], weights)
        if self.server_opt is None:
            self.model.set_params(avg)
        else:
            current = self.model.get_params()
            pseudo_grad = tree_sub(current, avg)
            self.model.set_params(self.server_opt.step(current, pseudo_grad))
        states = [u.state for u in updates]
        if states and states[0]:
            self.model.set_state(tree_average(states, weights))
        return []

    def eval_model_for(self, client: FLClient) -> str:
        return self.model.model_id

    def state_dict(self) -> dict:
        payload = super().state_dict()
        payload["server_opt"] = (
            self.server_opt.state_dict() if self.server_opt is not None else None
        )
        return payload

    def load_state_dict(self, payload: dict) -> None:
        super().load_state_dict(payload)
        if payload["server_opt"] is not None:
            if self.server_opt is None:
                raise ValueError(
                    "checkpoint carries server-optimizer state but this "
                    "strategy was built without one"
                )
            self.server_opt.load_state_dict(payload["server_opt"])


def fedavg(model: CellModel) -> SingleModelStrategy:
    """Plain FedAvg."""
    return SingleModelStrategy(model, name="fedavg")


def fedyogi(
    model: CellModel,
    lr: float = 0.01,
    beta1: float = 0.9,
    beta2: float = 0.99,
    tau: float = 1e-3,
) -> SingleModelStrategy:
    """FedAvg with the Yogi adaptive server step."""
    return SingleModelStrategy(model, server_opt=Yogi(lr, beta1, beta2, tau), name="fedyogi")


def fedprox_trainer_config(
    base: LocalTrainerConfig, mu: float = 0.01
) -> LocalTrainerConfig:
    """Local-trainer config with the FedProx proximal term enabled."""
    return LocalTrainerConfig(
        batch_size=base.batch_size,
        local_steps=base.local_steps,
        lr=base.lr,
        momentum=base.momentum,
        weight_decay=base.weight_decay,
        prox_mu=mu,
    )
