"""Baselines the paper compares against, on the shared FL substrate."""

from .cloud import CloudResult, train_centralized
from .fluid import FLuIDStrategy
from .heterofl import HeteroFLStrategy
from .single_model import (
    SingleModelStrategy,
    fedavg,
    fedprox_trainer_config,
    fedyogi,
)
from .splitmix import SplitMixStrategy
from .subnet import (
    SubnetSpec,
    build_subnet,
    param_index_map,
    ratio_spec,
    scatter_average,
)

__all__ = [
    "CloudResult",
    "train_centralized",
    "FLuIDStrategy",
    "HeteroFLStrategy",
    "SingleModelStrategy",
    "fedavg",
    "fedprox_trainer_config",
    "fedyogi",
    "SplitMixStrategy",
    "SubnetSpec",
    "build_subnet",
    "param_index_map",
    "ratio_spec",
    "scatter_average",
]
