"""FedTrans (MLSys 2024) reproduction.

Efficient federated learning via multi-model transformation: starting from
one small model, FedTrans grows a suite of hardware-compatible models during
training (widen/deepen at the Cell level with function-preserving weight
inheritance), assigns each client the right model by loss-based utility,
and co-trains the suite with similarity-weighted soft aggregation.

Quickstart::

    import numpy as np
    from repro import (
        FedTransConfig, FedTransStrategy, Coordinator, CoordinatorConfig,
        FLClient, femnist_like, mlp, sample_device_traces, calibrate_capacities,
    )

    ds = femnist_like(scale=0.02, seed=0)
    rng = np.random.default_rng(0)
    init = mlp(ds.input_shape, ds.num_classes, rng, width=16)
    traces = calibrate_capacities(
        sample_device_traces(ds.num_clients, rng), init.macs(), init.macs() * 32
    )
    clients = [FLClient(c.client_id, c, t) for c, t in zip(ds.clients, traces)]
    strategy = FedTransStrategy(
        init, FedTransConfig(gamma=3, delta=4, beta=0.02),
        max_capacity_macs=max(t.capacity_macs for t in traces),
    )
    log = Coordinator(strategy, clients, CoordinatorConfig(rounds=60)).run()
    print(log.final_accuracy(), log.pmacs())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from . import baselines, bench, core, data, device, fl, nn
from .baselines import (
    FLuIDStrategy,
    HeteroFLStrategy,
    SingleModelStrategy,
    SplitMixStrategy,
    fedavg,
    fedprox_trainer_config,
    fedyogi,
    train_centralized,
)
from .core import FedTransConfig, FedTransStrategy
from .data import (
    FederatedDataset,
    cifar10_like,
    femnist_like,
    openimage_like,
    speech_like,
)
from .device import calibrate_capacities, sample_device_traces
from .fl import (
    Coordinator,
    CoordinatorConfig,
    FLClient,
    LocalTrainerConfig,
    TrainingLog,
    recovery_summary,
    summarize,
)
from .nn import CellModel, mlp, small_cnn, small_resnet, vit_tiny

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "bench",
    "core",
    "data",
    "device",
    "fl",
    "nn",
    "FLuIDStrategy",
    "HeteroFLStrategy",
    "SingleModelStrategy",
    "SplitMixStrategy",
    "fedavg",
    "fedprox_trainer_config",
    "fedyogi",
    "train_centralized",
    "FedTransConfig",
    "FedTransStrategy",
    "FederatedDataset",
    "cifar10_like",
    "femnist_like",
    "openimage_like",
    "speech_like",
    "calibrate_capacities",
    "sample_device_traces",
    "Coordinator",
    "CoordinatorConfig",
    "FLClient",
    "LocalTrainerConfig",
    "TrainingLog",
    "recovery_summary",
    "summarize",
    "CellModel",
    "mlp",
    "small_cnn",
    "small_resnet",
    "vit_tiny",
]
